package nic

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/obs"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// benchRx drives the card's ingress path — handleFrame plus the kernel
// events it schedules — once per iteration. It backs the zero-cost-
// when-disabled contract: BenchmarkRxPath/instrumented publishes every
// card counter to a registry (no recorder sampling it) and must be
// within noise of BenchmarkRxPath/uninstrumented, because collector
// closures only run at gather time.
func benchRx(b *testing.B, instrument bool) {
	k := sim.NewKernel()
	_, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	n := New(k, macB, EFW(), eb)
	n.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoUDP, DstPorts: fw.Port(2000)},
	))
	n.SetDeliver(func(f *packet.Frame) {})
	if instrument {
		n.PublishMetrics(obs.NewRegistry(), obs.L("host", "bench"))
	}

	d := udpDatagram(ipA, ipB, 1000, 2000, 100)
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.handleFrame(f)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := n.Stats().RxAllowed; got != uint64(b.N) {
		b.Fatalf("rx allowed = %d, want %d", got, b.N)
	}
}

func BenchmarkRxPath(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) { benchRx(b, false) })
	b.Run("instrumented", func(b *testing.B) { benchRx(b, true) })
}
