package nic

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/obs"
	"barbican/internal/obs/profile"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// benchRx drives the card's ingress path — handleFrame plus the kernel
// events it schedules — once per iteration. It backs the zero-cost-
// when-disabled contract: BenchmarkRxPath/instrumented publishes every
// card counter to a registry (no recorder sampling it) and must be
// within noise of BenchmarkRxPath/uninstrumented, because collector
// closures only run at gather time. With sampleEvery > 0 a packet
// tracer is attached and frames are stamped upstream at that 1-in-N
// rate, measuring the tracing overhead documented in DESIGN.md §8.
// With profiled, a cost-domain card profiler and a wall-domain kernel
// profiler are both attached — the documented profiling overhead of
// DESIGN.md §12; the uninstrumented (profiling-off) variant must stay
// at 0 allocs/op.
func benchRx(b *testing.B, instrument bool, sampleEvery int, profiled bool) {
	k := sim.NewKernel()
	_, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	n := New(k, macB, EFW(), eb)
	n.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoUDP, DstPorts: fw.Port(2000)},
	))
	n.SetDeliver(func(f *packet.Frame) {})
	if instrument {
		n.PublishMetrics(obs.NewRegistry(), obs.L("host", "bench"))
	}
	var tr *tracing.Tracer
	if sampleEvery > 0 {
		tr = tracing.New(k, tracing.Options{SampleEvery: sampleEvery, Limit: 1024})
		n.SetTracer(tr)
	}
	var cp *profile.CardProfiler
	if profiled {
		cp = profile.NewCardProfiler("bench", "", 0)
		n.SetProfiler(cp)
		k.SetStepProfiler(profile.NewKernelProfiler(profile.DefaultKernelSampleEvery))
	}

	d := udpDatagram(ipA, ipB, 1000, 2000, 100)
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			// Stamp the frame the way the sending NIC would.
			f.TraceID = 0
			if tr.Take() {
				f.TraceID = tr.Begin("bench udp")
			}
		}
		n.handleFrame(f)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := n.Stats().RxAllowed; got != uint64(b.N) {
		b.Fatalf("rx allowed = %d, want %d", got, b.N)
	}
	if tr != nil && b.N >= sampleEvery && tr.Sampled() == 0 {
		b.Fatal("tracer attached but nothing sampled")
	}
	if cp != nil && cp.Rx.Packets != uint64(b.N) {
		b.Fatalf("profiler recorded %d rx packets, want %d", cp.Rx.Packets, b.N)
	}
}

func BenchmarkRxPath(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) { benchRx(b, false, 0, false) })
	b.Run("instrumented", func(b *testing.B) { benchRx(b, true, 0, false) })
	b.Run("traced-1in64", func(b *testing.B) { benchRx(b, true, 64, false) })
	b.Run("profiled", func(b *testing.B) { benchRx(b, true, 0, true) })
}
