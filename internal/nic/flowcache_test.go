package nic

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func depth64Allow(t *testing.T) *fw.RuleSet {
	t.Helper()
	rs, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestFlowCacheBoundedEviction exercises the cache structure directly:
// capacity is a hard bound, displaced flows miss again, and the
// round-robin cursor evicts oldest-inserted first.
func TestFlowCacheBoundedEviction(t *testing.T) {
	c := newFlowCache(4)
	rs := depth64Allow(t)
	mk := func(last byte) packet.Summary {
		return packet.Summary{
			Proto: packet.ProtoUDP,
			Src:   packet.IP{10, 0, 0, last}, Dst: packet.IP{10, 0, 1, 1},
			SrcPort: 1000, DstPort: 2000, HasPorts: true, IPLen: 40,
		}
	}
	for i := byte(0); i < 6; i++ {
		s := mk(i)
		v := rs.Eval(s, fw.Out)
		c.insert(s, fw.Out, fw.StateNone, v)
	}
	st := c.stats()
	if st.Entries != 4 {
		t.Errorf("entries = %d, want the capacity bound 4", st.Entries)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	// The two oldest flows were displaced; the four newest remain.
	for i := byte(0); i < 2; i++ {
		if _, ok := c.lookup(mk(i), fw.Out, fw.StateNone); ok {
			t.Errorf("flow %d still cached after eviction", i)
		}
	}
	for i := byte(2); i < 6; i++ {
		v, ok := c.lookup(mk(i), fw.Out, fw.StateNone)
		if !ok {
			t.Fatalf("flow %d missing from cache", i)
		}
		if v.Index != 64 || v.Action != fw.Allow {
			t.Errorf("flow %d cached verdict = %+v", i, v)
		}
	}
	c.invalidate()
	if st := c.stats(); st.Entries != 0 || st.Invalidations != 1 {
		t.Errorf("after invalidate: %+v", st)
	}
	if _, ok := c.lookup(mk(3), fw.Out, fw.StateNone); ok {
		t.Error("lookup succeeded after invalidate")
	}
}

// TestFlowCacheKeySeparation: flows differing in any verdict-relevant
// attribute — ports, direction, sealing — must not share a cache entry.
func TestFlowCacheKeySeparation(t *testing.T) {
	c := newFlowCache(16)
	base := packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.IP{10, 0, 0, 1}, Dst: packet.IP{10, 0, 0, 2},
		SrcPort: 1, DstPort: 80, HasPorts: true, IPLen: 40,
	}
	c.insert(base, fw.In, fw.StateNone, fw.Verdict{Action: fw.Allow, Index: 1, Traversed: 1})

	variants := []packet.Summary{base, base, base}
	variants[0].DstPort = 81
	variants[1].Sealed = true
	variants[2].HasPorts = false
	for i, s := range variants {
		if _, ok := c.lookup(s, fw.In, fw.StateNone); ok {
			t.Errorf("variant %d shared the base flow's entry", i)
		}
	}
	if _, ok := c.lookup(base, fw.Out, fw.StateNone); ok {
		t.Error("opposite direction shared the base flow's entry")
	}
	if v, ok := c.lookup(base, fw.In, fw.StateNone); !ok || v.Index != 1 {
		t.Errorf("base flow lookup = %+v, %v", v, ok)
	}
	// Length and flags changes do NOT change the flow identity: the
	// verdict doesn't depend on them, so they must hit.
	longer := base
	longer.IPLen = 1400
	if _, ok := c.lookup(longer, fw.In, fw.StateNone); !ok {
		t.Error("length-only variant missed; it should share the flow entry")
	}
}

// TestFlowCacheHitReplaysVerdictAndCounters: on a NextGen card a
// repeated flow is served from the cache (hit counted) while the rule
// set's hit accounting advances exactly as if every packet walked.
func TestFlowCacheHitReplaysVerdictAndCounters(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, NextGen(), Standard())
	_ = b
	rs := depth64Allow(t)
	a.InstallRuleSet(rs)

	for i := 0; i < 5; i++ {
		if !a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB) {
			t.Fatalf("send %d refused", i)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := a.FlowCacheStats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("cache stats = %+v, want 1 miss + 4 hits", st)
	}
	if got := rs.EvalCount(); got != 5 {
		t.Errorf("rule-set evals = %d, want 5 (cache hits must keep counters exact)", got)
	}
	if got := rs.MatchCount(64); got != 5 {
		t.Errorf("action-rule hits = %d, want 5", got)
	}
}

// TestFlowCacheInvalidatedOnPolicyCommit: a verdict cached under the
// old policy must never survive a commit — the freshly committed
// deny-all must take effect on the very next packet.
func TestFlowCacheInvalidatedOnPolicyCommit(t *testing.T) {
	k := sim.NewKernel()
	a, _ := pair(t, k, NextGen(), Standard())
	a.InstallRuleSet(depth64Allow(t))
	invalAfterInstall := a.FlowCacheStats().Invalidations

	d := udpDatagram(ipA, ipB, 1000, 2000, 100)
	if !a.Send(d, macB) || !a.Send(d, macB) {
		t.Fatal("warm-up sends refused")
	}
	if st := a.FlowCacheStats(); st.Hits != 1 {
		t.Fatalf("cache not warm before commit: %+v", st)
	}

	a.CommitPolicyUpdate(fw.MustRuleSet(fw.Deny, fw.DenyAllRule()))
	if st := a.FlowCacheStats(); st.Invalidations != invalAfterInstall+1 {
		t.Fatalf("commit did not invalidate: %+v", st)
	}
	if a.Send(d, macB) {
		t.Fatal("send allowed after deny-all commit — stale cached verdict served")
	}
	if st := a.Stats(); st.TxDenied != 1 {
		t.Errorf("TxDenied = %d, want 1", st.TxDenied)
	}
	if st := a.FlowCacheStats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (post-commit packet must re-evaluate)", st.Misses)
	}
}

// TestFlowCacheInvalidatedOnDegradedTransitions: entering degraded
// (interrupted update) and the watchdog recovery back to the committed
// policy each invalidate the cache.
func TestFlowCacheInvalidatedOnDegradedTransitions(t *testing.T) {
	k := sim.NewKernel()
	a, _ := pair(t, k, NextGen(), Standard())
	a.SetFailMode(FailModeClosed)
	a.InstallRuleSet(depth64Allow(t))

	d := udpDatagram(ipA, ipB, 1000, 2000, 100)
	if !a.Send(d, macB) || !a.Send(d, macB) {
		t.Fatal("warm-up sends refused")
	}
	before := a.FlowCacheStats()
	if before.Hits != 1 || before.Entries != 1 {
		t.Fatalf("cache not warm: %+v", before)
	}

	a.BeginPolicyUpdate()
	a.AbortPolicyUpdate()
	if got := a.DegradedState(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	afterAbort := a.FlowCacheStats()
	if afterAbort.Invalidations != before.Invalidations+1 {
		t.Errorf("degraded entry: invalidations = %d, want %d", afterAbort.Invalidations, before.Invalidations+1)
	}
	if afterAbort.Entries != 0 {
		t.Errorf("degraded entry left %d cached verdicts", afterAbort.Entries)
	}

	// Let the watchdog restore the committed rule set.
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.DegradedState(); got != StateHealthy {
		t.Fatalf("state after watchdog = %v, want healthy", got)
	}
	afterRecover := a.FlowCacheStats()
	if afterRecover.Invalidations != afterAbort.Invalidations+1 {
		t.Errorf("watchdog reset: invalidations = %d, want %d", afterRecover.Invalidations, afterAbort.Invalidations+1)
	}
	// Back to healthy: the next packet of the flow is a fresh miss.
	if !a.Send(d, macB) {
		t.Fatal("send refused after recovery")
	}
	if st := a.FlowCacheStats(); st.Misses != afterRecover.Misses+1 {
		t.Errorf("post-recovery packet was not a miss: %+v", st)
	}
}

// TestNextGenEgressParityWithEFW: the compiled + cached card must reach
// the same verdicts and rule accounting as the linear EFW on identical
// traffic — only the cost differs.
func TestNextGenEgressParityWithEFW(t *testing.T) {
	run := func(prof Profile) (Stats, *fw.RuleSet) {
		k := sim.NewKernel()
		a, _ := pair(t, k, prof, Standard())
		rs := depth64Allow(t)
		a.InstallRuleSet(rs)
		flows := []struct {
			dport   uint16
			payload int
		}{{2000, 100}, {2000, 100}, {53, 40}, {2000, 1400}, {53, 40}}
		for _, f := range flows {
			a.Send(udpDatagram(ipA, ipB, 1000, f.dport, f.payload), macB)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return a.Stats(), rs
	}
	efwStats, efwRS := run(EFW())
	ngStats, ngRS := run(NextGen())
	if efwStats.TxAllowed != ngStats.TxAllowed || efwStats.TxDenied != ngStats.TxDenied {
		t.Errorf("verdict divergence: EFW tx=%d/%d, NextGen tx=%d/%d",
			efwStats.TxAllowed, efwStats.TxDenied, ngStats.TxAllowed, ngStats.TxDenied)
	}
	ev1, per1, def1 := efwRS.Stats()
	ev2, per2, def2 := ngRS.Stats()
	if ev1 != ev2 || def1 != def2 {
		t.Errorf("counter divergence: evals %d/%d defaultHits %d/%d", ev1, ev2, def1, def2)
	}
	for i := range per1 {
		if per1[i] != per2[i] {
			t.Errorf("rule %d hits: EFW %d, NextGen %d", i+1, per1[i], per2[i])
		}
	}
}
