package nic

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func tcpFrame(src, dst packet.IP, sport, dport uint16, flags packet.TCPFlags) *packet.Frame {
	seg := &packet.TCPSegment{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535}
	d := packet.NewDatagram(src, dst, packet.ProtoTCP, 1, seg.Marshal(src, dst))
	return &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}
}

// benchRxStateful drives the stateful card's ingress: conntrack
// classify, compiled/cached rule match, conntrack commit. Both
// variants are regression-gated at 0 allocs/op — connection tracking
// must not cost the fast path its allocation-free contract.
func benchRxStateful(b *testing.B, invalid bool) {
	k := sim.NewKernel()
	_, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	n := New(k, macB, Stateful(), eb)
	n.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP,
			DstPorts: fw.Port(2000), States: fw.MaskOf(fw.StateNew)},
		fw.Rule{Action: fw.Allow, Direction: fw.Both,
			States: fw.MaskOf(fw.StateEstablished, fw.StateRelated)},
	))
	n.SetDeliver(func(f *packet.Frame) {})

	// Establish the flow: ingress SYN, egress SYN/ACK, ingress ACK —
	// the entry the hit path will be measured against.
	n.handleFrame(tcpFrame(ipA, ipB, 40000, 2000, packet.FlagSYN))
	seg := &packet.TCPSegment{SrcPort: 2000, DstPort: 40000,
		Flags: packet.FlagSYN | packet.FlagACK, Window: 65535}
	n.Send(packet.NewDatagram(ipB, ipA, packet.ProtoTCP, 2, seg.Marshal(ipB, ipA)), macA)
	n.handleFrame(tcpFrame(ipA, ipB, 40000, 2000, packet.FlagACK))
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}

	f := tcpFrame(ipA, ipB, 40000, 2000, packet.FlagACK|packet.FlagPSH)
	if invalid {
		// Untracked mid-stream ACK: the ACK-flood drop path — one
		// table lookup, no rule walk, no state created.
		f = tcpFrame(ipA, ipB, 41000, 2000, packet.FlagACK)
	}
	base := n.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.handleFrame(f)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if invalid {
		if got := n.Stats().RxNoStateDrops - base.RxNoStateDrops; got != uint64(b.N) {
			b.Fatalf("no-state drops = %d, want %d", got, b.N)
		}
		return
	}
	if got := n.Stats().RxAllowed - base.RxAllowed; got != uint64(b.N) {
		b.Fatalf("rx allowed = %d, want %d", got, b.N)
	}
	if n.ConntrackStats().Hits == 0 {
		b.Fatal("conntrack never hit")
	}
}

func BenchmarkRxPathStateful(b *testing.B) {
	b.Run("established-hit", func(b *testing.B) { benchRxStateful(b, false) })
	b.Run("invalid-drop", func(b *testing.B) { benchRxStateful(b, true) })
}
