// Package nic models the network interface cards of the paper's testbed:
// a standard non-filtering NIC (Intel EEPro 100), the 3Com Embedded
// Firewall (EFW), and the Autonomic Distributed Firewall (ADF).
//
// The filtering cards enforce a fw.RuleSet on an embedded processor with
// a finite cycle budget. Per-packet cost grows with the number of rules
// traversed before the action rule, and VPG traffic additionally pays
// per-byte cryptography. When offered work exceeds the budget the card
// drops packets — the saturation behaviour behind the paper's
// denial-of-service findings. The EFW additionally exhibits the paper's
// Deny-All lockup: flooded with denied packets above ~1,000/s the card
// wedges until the firewall agent is restarted.
package nic

import (
	"time"

	"barbican/internal/sim"
)

// DefaultQueuePackets is the default descriptor-ring depth of the
// modeled cards.
const DefaultQueuePackets = 128

// Processor models an embedded packet processor with a finite budget of
// abstract cost units per second and a fixed-size descriptor ring.
//
// The ring is bounded in *packets*, as real NIC DMA rings are, so the
// time depth of the buffer scales with per-packet cost: a card grinding
// through a 64-rule policy buffers several milliseconds of work, while
// the same ring holds far less time at one rule. That property is what
// lets TCP ride a slow card smoothly and still collapse under floods.
type Processor struct {
	kernel    *sim.Kernel
	capacity  float64 // units per second; <= 0 means infinitely fast
	maxQueue  int
	queued    int
	busyUntil time.Duration

	admitted      uint64
	overloadDrops uint64
	unitsDone     float64

	// drainFn is the precomputed completion callback, scheduled through
	// the kernel's pooled-event path so admitting work allocates nothing.
	drainFn func(any)
}

// NewProcessor creates a processor. capacity <= 0 models a wire-speed
// (non-filtering) data path; maxQueue bounds the descriptor ring (0
// defaults to DefaultQueuePackets).
func NewProcessor(k *sim.Kernel, capacity float64, maxQueue int) *Processor {
	if maxQueue <= 0 {
		maxQueue = DefaultQueuePackets
	}
	p := &Processor{kernel: k, capacity: capacity, maxQueue: maxQueue}
	p.drainFn = func(any) {
		if p.queued > 0 {
			p.queued--
		}
	}
	return p
}

// Admit offers work of the given cost. It returns the virtual time at
// which the work completes and whether the work was accepted; rejected
// work models a packet dropped off a full ring by a saturated card.
func (p *Processor) Admit(cost float64) (time.Duration, bool) {
	now := p.kernel.Now()
	if p.capacity <= 0 {
		p.admitted++
		return now, true
	}
	if p.queued >= p.maxQueue {
		p.overloadDrops++
		return 0, false
	}
	work := time.Duration(cost / p.capacity * float64(time.Second))
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start + work
	p.queued++
	p.admitted++
	p.unitsDone += cost
	p.kernel.AtCall(p.busyUntil, p.drainFn, nil)
	return p.busyUntil, true
}

// Backlog returns the queued work, in time units.
func (p *Processor) Backlog() time.Duration {
	b := p.busyUntil - p.kernel.Now()
	if b < 0 {
		return 0
	}
	return b
}

// Reset discards queued work (used when the firewall agent restarts the
// card).
func (p *Processor) Reset() {
	p.busyUntil = p.kernel.Now()
	p.queued = 0
}

// Queued returns the current ring occupancy.
func (p *Processor) Queued() int { return p.queued }

// OverloadDrops returns how many work items were rejected.
func (p *Processor) OverloadDrops() uint64 { return p.overloadDrops }

// Admitted returns how many work items were accepted.
func (p *Processor) Admitted() uint64 { return p.admitted }

// UnitsDone returns the total cost units accepted.
func (p *Processor) UnitsDone() float64 { return p.unitsDone }

// Capacity returns the processor capacity in units/s (0 = infinite).
func (p *Processor) Capacity() float64 { return p.capacity }
