package nic

import (
	"fmt"
	"testing"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

func benchSummary(srcLast byte, sport uint16) packet.Summary {
	return packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.IP{10, 0, 0, srcLast}, Dst: packet.IP{10, 0, 1, 1},
		SrcPort: sport, DstPort: 80, HasPorts: true, IPLen: 40,
	}
}

// BenchmarkFlowCache prices the two cache outcomes the NextGen cost
// model charges for: a hit (one map read + counter replay — flat at
// any rule depth, 0 allocs/op) and a miss under churn (failed lookup +
// compiled eval + bounded insert with eviction).
func BenchmarkFlowCache(b *testing.B) {
	for _, depth := range []int{1, 64, 512} {
		rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			b.Fatal(err)
		}
		c := fw.Compile(rs)
		fc := newFlowCache(4096)
		s := benchSummary(1, 4242)
		fc.insert(s, fw.Out, fw.StateNone, c.Eval(s, fw.Out))
		b.Run(fmt.Sprintf("hit-depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, ok := fc.lookup(s, fw.Out, fw.StateNone)
				if !ok || v.Action != fw.Allow {
					b.Fatal("unexpected miss")
				}
				rs.Record(v)
			}
		})
	}

	// Churn: 8192 distinct flows over a 4096-entry cache, so the
	// round-robin clock displaces every flow before it returns — each
	// packet pays the full miss path.
	rs, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		b.Fatal(err)
	}
	c := fw.Compile(rs)
	fc := newFlowCache(4096)
	flows := make([]packet.Summary, 8192)
	for i := range flows {
		flows[i] = benchSummary(byte(i), uint16(1000+i))
	}
	b.Run("miss-churn-depth64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := flows[i&8191]
			if _, ok := fc.lookup(s, fw.Out, fw.StateNone); !ok {
				fc.insert(s, fw.Out, fw.StateNone, c.Eval(s, fw.Out))
			}
		}
	})
}
