package nic

import (
	"time"

	"barbican/internal/fw"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
)

// FailMode selects what a card does with traffic while its policy
// plane is degraded (an interrupted policy update, or firmware backlog
// past the CPU-exhaustion threshold). The zero value disables the
// degraded-mode state machine entirely, preserving the legacy
// fair-weather behavior byte for byte.
type FailMode uint8

const (
	// FailModeNone disables the degraded-mode machine (legacy behavior).
	FailModeNone FailMode = iota
	// FailModeClosed drops all non-management traffic while degraded:
	// the safe-but-unavailable posture. The management bypass still
	// passes, so a policy re-push can land and restore service.
	FailModeClosed
	// FailModeOpen passes all traffic unfiltered while degraded: the
	// available-but-unprotected posture (hardware bypass).
	FailModeOpen

	NumFailModes // array-sizing sentinel, not a mode
)

var failModeNames = [...]string{
	FailModeNone:   "none",
	FailModeClosed: "fail-closed",
	FailModeOpen:   "fail-open",
}

func (m FailMode) String() string {
	if int(m) < len(failModeNames) && failModeNames[m] != "" {
		return failModeNames[m]
	}
	return "failmode?"
}

// ParseFailMode parses the CLI spelling of a fail mode.
func ParseFailMode(s string) (FailMode, bool) {
	for m := FailModeNone; m < NumFailModes; m++ {
		if s == failModeNames[m] {
			return m, true
		}
	}
	// Accept the shorthand spellings too.
	switch s {
	case "closed":
		return FailModeClosed, true
	case "open":
		return FailModeOpen, true
	}
	return FailModeNone, false
}

// DegradedState is the card's policy-plane state.
type DegradedState uint8

const (
	// StateHealthy: committed policy enforced normally.
	StateHealthy DegradedState = iota
	// StateUpdating: a policy push is in flight; the previous committed
	// policy stays enforced until commit (atomic swap).
	StateUpdating
	// StateDegraded: an update was interrupted or the firmware backlog
	// crossed the CPU-exhaustion threshold; traffic handling follows
	// the configured FailMode until the watchdog resets the card.
	StateDegraded
	// StateWedged: the EFW Deny-All lockup; only RestartAgent recovers.
	StateWedged

	NumDegradedStates // array-sizing sentinel, not a state
)

var degradedStateNames = [...]string{
	StateHealthy:  "healthy",
	StateUpdating: "updating",
	StateDegraded: "degraded",
	StateWedged:   "wedged",
}

func (s DegradedState) String() string {
	if int(s) < len(degradedStateNames) && degradedStateNames[s] != "" {
		return degradedStateNames[s]
	}
	return "state?"
}

// StateRecovery selects what happens to the conntrack table when
// enforcement returns after a degraded episode. The hazard: while a
// fail-open card passed traffic unfiltered, connections were
// established that the table never saw. With a stateful policy those
// flows classify INVALID the moment enforcement resumes — the state
// desync failure, where recovery itself severs every connection that
// survived the outage.
type StateRecovery uint8

const (
	// RecoveryResync keeps tracked entries and opens a loose-pickup
	// window: for its duration, mid-stream TCP packets with no entry
	// classify New and, if the policy admits them, are adopted as
	// established connections (the net.netfilter.nf_conntrack_tcp_loose
	// analog). The default, and the fix for the desync hazard.
	RecoveryResync StateRecovery = iota
	// RecoveryKeep keeps tracked entries but opens no pickup window:
	// connections established while degraded-open desync and are
	// severed. Exists to reproduce the hazard measurably.
	RecoveryKeep
	// RecoveryFlush drops the whole table on recovery: every live
	// connection desyncs, not just the outage-born ones. The worst
	// posture, kept for comparison.
	RecoveryFlush

	NumStateRecoveries // array-sizing sentinel, not a policy
)

var stateRecoveryNames = [...]string{
	RecoveryResync: "resync",
	RecoveryKeep:   "keep",
	RecoveryFlush:  "flush",
}

func (p StateRecovery) String() string {
	if int(p) < len(stateRecoveryNames) && stateRecoveryNames[p] != "" {
		return stateRecoveryNames[p]
	}
	return "staterecovery?"
}

// ParseStateRecovery parses the CLI spelling of a recovery policy.
func ParseStateRecovery(s string) (StateRecovery, bool) {
	for p := RecoveryResync; p < NumStateRecoveries; p++ {
		if s == stateRecoveryNames[p] {
			return p, true
		}
	}
	return RecoveryResync, false
}

// SetStateRecovery selects the conntrack recovery policy.
func (n *NIC) SetStateRecovery(p StateRecovery) { n.stateRecovery = p }

// StateRecovery returns the configured conntrack recovery policy.
func (n *NIC) StateRecovery() StateRecovery { return n.stateRecovery }

// Degraded-mode timing defaults.
const (
	// DefaultUpdateWatchdog bounds how long a policy update may stay
	// open before the card declares it interrupted and degrades.
	DefaultUpdateWatchdog = 500 * time.Millisecond
	// DefaultRecoveryInterval is how often a degraded card's watchdog
	// checks whether it can reset (restore the last committed rule set
	// and return to healthy).
	DefaultRecoveryInterval = 100 * time.Millisecond
	// DefaultResyncWindow is how long after recovery the conntrack
	// table accepts mid-stream pickup under RecoveryResync.
	DefaultResyncWindow = time.Second
)

// conntrackRecovered applies the configured StateRecovery policy at the
// moment enforcement returns after a degraded episode. Callers run it
// after the committed rule set is restored.
func (n *NIC) conntrackRecovered() {
	if n.ct == nil {
		return
	}
	switch n.stateRecovery {
	case RecoveryKeep:
		// Entries survive; outage-born flows stay invisible (the hazard).
	case RecoveryFlush:
		n.ct.Flush()
	case RecoveryResync, NumStateRecoveries:
		n.ct.EnterLooseWindow(n.kernel.Now() + DefaultResyncWindow)
	}
}

// SetFailMode arms (or with FailModeNone disarms) the degraded-mode
// state machine. With the machine off — the default — the card behaves
// exactly as it did before fault tolerance existed.
func (n *NIC) SetFailMode(m FailMode) { n.failMode = m }

// FailMode returns the configured degraded-traffic posture.
func (n *NIC) FailMode() FailMode { return n.failMode }

// DegradedState returns the card's policy-plane state. A wedged card
// reports StateWedged regardless of the degraded machine.
func (n *NIC) DegradedState() DegradedState {
	if n.locked {
		return StateWedged
	}
	return n.degState
}

// LastCommitted returns the last committed rule set — what a watchdog
// reset restores.
func (n *NIC) LastCommitted() *fw.RuleSet { return n.lastCommitted }

// BeginPolicyUpdate marks a policy push in flight and arms the update
// watchdog: if neither CommitPolicyUpdate nor AbortPolicyUpdate runs
// within the watchdog window, the update counts as interrupted and the
// card degrades. No-op when the degraded machine is off.
func (n *NIC) BeginPolicyUpdate() {
	if n.failMode == FailModeNone {
		return
	}
	if n.updateEv != nil {
		n.updateEv.Cancel()
		n.updateEv = nil
	}
	if n.degState == StateHealthy {
		n.degState = StateUpdating
	}
	n.updateEv = n.kernel.After(DefaultUpdateWatchdog, func() {
		n.updateEv = nil
		n.AbortPolicyUpdate()
	})
}

// CommitPolicyUpdate atomically installs rs as the enforced and last
// committed policy and returns the card to healthy (a successful
// commit is itself a recovery action when degraded).
func (n *NIC) CommitPolicyUpdate(rs *fw.RuleSet) {
	if n.updateEv != nil {
		n.updateEv.Cancel()
		n.updateEv = nil
	}
	if n.recoverEv != nil {
		n.recoverEv.Cancel()
		n.recoverEv = nil
	}
	wasDegraded := n.degState == StateDegraded
	n.setRules(rs)
	n.lastCommitted = rs
	n.degState = StateHealthy
	if wasDegraded {
		n.conntrackRecovered()
	}
}

// CancelPolicyUpdate ends an in-flight policy update that was cleanly
// rejected (stale version, unparseable policy): the card returns to
// healthy with its current rules, no degradation. Contrast
// AbortPolicyUpdate, which is for updates that were torn down mid-push.
func (n *NIC) CancelPolicyUpdate() {
	if n.updateEv != nil {
		n.updateEv.Cancel()
		n.updateEv = nil
	}
	if n.degState == StateUpdating {
		n.degState = StateHealthy
	}
}

// AbortPolicyUpdate declares the in-flight policy update interrupted
// (connection torn down mid-push, corrupted payload, watchdog expiry).
// The card degrades per its FailMode. No-op when the machine is off or
// no update is in flight.
func (n *NIC) AbortPolicyUpdate() {
	if n.updateEv != nil {
		n.updateEv.Cancel()
		n.updateEv = nil
	}
	if n.failMode == FailModeNone || n.degState != StateUpdating {
		return
	}
	n.stats.UpdatesAborted++
	n.enterDegraded(false)
}

// noteOverload watches processor admission rejections: past the
// CPU-exhaustion threshold the card degrades (when the machine is
// armed), bounding how long it keeps half-serving under flood.
func (n *NIC) noteOverload(reason tracing.DropReason) {
	if n.failMode == FailModeNone || reason != tracing.DropCPUExhausted {
		return
	}
	if n.degState == StateHealthy || n.degState == StateUpdating {
		n.enterDegraded(true)
	}
}

// enterDegraded transitions to StateDegraded and schedules the
// watchdog recovery check. fromOverload marks backlog-triggered
// entries, which must additionally wait for the backlog to drain
// before the watchdog resets.
func (n *NIC) enterDegraded(fromOverload bool) {
	if n.degState == StateDegraded {
		return
	}
	n.degState = StateDegraded
	n.overloadDegrade = fromOverload
	n.stats.DegradedEntries++
	// Posture change: verdicts cached while healthy must not outlive
	// the transition (and the flow cache must be cold when the watchdog
	// later restores enforcement).
	n.invalidateFlowCache()
	if n.recoverEv != nil {
		n.recoverEv.Cancel()
	}
	n.recoverEv = n.kernel.After(DefaultRecoveryInterval, n.recoverCheck)
}

// recoverCheck is the degraded watchdog: once any triggering backlog
// has drained it resets the card — restoring the last committed rule
// set and returning to healthy — otherwise it re-arms itself.
func (n *NIC) recoverCheck() {
	n.recoverEv = nil
	if n.degState != StateDegraded {
		return
	}
	if n.overloadDegrade && n.proc.Backlog() >= cpuExhaustedBacklog/2 {
		n.recoverEv = n.kernel.After(DefaultRecoveryInterval, n.recoverCheck)
		return
	}
	n.setRules(n.lastCommitted)
	n.degState = StateHealthy
	n.stats.WatchdogResets++
	n.conntrackRecovered()
}

// degradedIngress applies the FailMode to one ingress frame while
// degraded. It reports whether the frame was fully handled here;
// false falls through to the normal path (fail-closed management
// traffic, which must keep flowing for recovery pushes to land).
func (n *NIC) degradedIngress(f *packet.Frame, s packet.Summary, tid uint64) bool {
	if n.failMode == FailModeOpen {
		n.stats.DegradedPass++
		n.stats.RxAllowed++
		if tid != 0 {
			n.tracer.Point(tid, tracing.StageNICRx, "degraded fail-open pass")
		}
		if n.deliver != nil {
			n.deliver(f)
		}
		return true
	}
	if n.isManagement(s) {
		return false
	}
	n.stats.RxDegradedDrops++
	n.rxDrops[tracing.DropDegraded]++
	if tid != 0 {
		n.tracer.Drop(tid, tracing.StageNICRx, tracing.DropDegraded)
	}
	return true
}

// degradedEgress applies the FailMode to one egress datagram while
// degraded; handled=false falls through to the normal path.
func (n *NIC) degradedEgress(d *packet.Datagram, dstMAC packet.MAC, s packet.Summary, tid uint64) (handled, sent bool) {
	if n.failMode == FailModeOpen {
		n.stats.DegradedPass++
		n.stats.TxAllowed++
		frame := &packet.Frame{Dst: dstMAC, Src: n.mac, Type: packet.EtherTypeIPv4, Payload: d.Marshal(), TraceID: tid}
		if tid != 0 {
			n.tracer.Point(tid, tracing.StageNICTx, "degraded fail-open pass")
		}
		n.ep.Send(frame)
		return true, true
	}
	if n.isManagement(s) {
		return false, false
	}
	n.stats.TxDegradedDrops++
	n.txDrops[tracing.DropDegraded]++
	if tid != 0 {
		n.tracer.Drop(tid, tracing.StageNICTx, tracing.DropDegraded)
	}
	return true, false
}
