package nic

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// TestFailModeNoneIsInert: with the machine disarmed (the default),
// Begin/Abort are no-ops and the card never leaves healthy.
func TestFailModeNoneIsInert(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.BeginPolicyUpdate()
	b.AbortPolicyUpdate()
	if got := b.DegradedState(); got != StateHealthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	var delivered int
	b.SetDeliver(func(*packet.Frame) { delivered++ })
	a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if st := b.Stats(); st.DegradedEntries != 0 || st.UpdatesAborted != 0 {
		t.Errorf("disarmed machine recorded activity: %+v", st)
	}
}

// TestInterruptedUpdateFailClosed: an aborted policy update degrades a
// fail-closed card, which drops everything until the watchdog resets
// it back to the last committed rule set.
func TestInterruptedUpdateFailClosed(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	committed := fw.MustRuleSet(fw.Allow)
	b.InstallRuleSet(committed)
	b.SetFailMode(FailModeClosed)

	var delivered int
	b.SetDeliver(func(*packet.Frame) { delivered++ })

	b.BeginPolicyUpdate()
	if got := b.DegradedState(); got != StateUpdating {
		t.Fatalf("after begin: state = %v, want updating", got)
	}
	b.AbortPolicyUpdate()
	if got := b.DegradedState(); got != StateDegraded {
		t.Fatalf("after abort: state = %v, want degraded", got)
	}

	// Traffic during the degraded window is dropped fail-closed.
	k.AtCall(10*time.Millisecond, func(any) {
		a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB)
	}, nil)
	if err := k.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("fail-closed degraded card delivered %d frames", delivered)
	}
	st := b.Stats()
	if st.RxDegradedDrops != 1 || st.UpdatesAborted != 1 || st.DegradedEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	rx, _ := b.DropCounts()
	if rx[tracing.DropDegraded] != 1 {
		t.Fatalf("rxDrops[degraded] = %d, want 1", rx[tracing.DropDegraded])
	}

	// The watchdog resets the card and restores the committed policy.
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := b.DegradedState(); got != StateHealthy {
		t.Fatalf("after watchdog: state = %v, want healthy", got)
	}
	if b.RuleSet() != committed {
		t.Fatal("watchdog did not restore the committed rule set")
	}
	if b.Stats().WatchdogResets != 1 {
		t.Fatalf("WatchdogResets = %d, want 1", b.Stats().WatchdogResets)
	}
	k.AtCall(k.Now()+time.Millisecond, func(any) {
		a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB)
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("recovered card delivered %d frames, want 1", delivered)
	}
}

// TestInterruptedUpdateFailOpen: same interruption, opposite posture —
// the card passes traffic unfiltered while degraded, even traffic the
// committed policy denies.
func TestInterruptedUpdateFailOpen(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny)) // deny-all committed policy
	b.SetFailMode(FailModeOpen)

	var delivered int
	b.SetDeliver(func(*packet.Frame) { delivered++ })

	b.BeginPolicyUpdate()
	b.AbortPolicyUpdate()
	k.AtCall(10*time.Millisecond, func(any) {
		a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB)
	}, nil)
	if err := k.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("fail-open degraded card delivered %d frames, want 1 (unfiltered)", delivered)
	}
	if b.Stats().DegradedPass != 1 {
		t.Fatalf("DegradedPass = %d, want 1", b.Stats().DegradedPass)
	}

	// After recovery the deny-all policy bites again.
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := b.DegradedState(); got != StateHealthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	k.AtCall(k.Now()+time.Millisecond, func(any) {
		a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB)
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("recovered deny-all card delivered %d total, want still 1", delivered)
	}
}

// TestWatchdogFiresOnStalledUpdate: BeginPolicyUpdate with no commit
// degrades on its own once the update watchdog expires.
func TestWatchdogFiresOnStalledUpdate(t *testing.T) {
	k := sim.NewKernel()
	_, b := pair(t, k, Standard(), EFW())
	b.SetFailMode(FailModeClosed)
	b.BeginPolicyUpdate()
	if err := k.RunUntil(DefaultUpdateWatchdog / 2); err != nil {
		t.Fatal(err)
	}
	if got := b.DegradedState(); got != StateUpdating {
		t.Fatalf("before watchdog: state = %v, want updating", got)
	}
	if err := k.RunUntil(DefaultUpdateWatchdog + time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := b.DegradedState(); got != StateDegraded {
		t.Fatalf("after watchdog: state = %v, want degraded", got)
	}
	if b.Stats().UpdatesAborted != 1 {
		t.Fatalf("UpdatesAborted = %d, want 1", b.Stats().UpdatesAborted)
	}
}

// TestCommitCancelsWatchdog: a commit inside the window installs the
// new policy and the watchdog never fires.
func TestCommitCancelsWatchdog(t *testing.T) {
	k := sim.NewKernel()
	_, b := pair(t, k, Standard(), EFW())
	b.SetFailMode(FailModeClosed)
	next := fw.MustRuleSet(fw.Allow)
	b.BeginPolicyUpdate()
	k.At(DefaultUpdateWatchdog/4, func() { b.CommitPolicyUpdate(next) })
	if err := k.RunUntil(2 * DefaultUpdateWatchdog); err != nil {
		t.Fatal(err)
	}
	if got := b.DegradedState(); got != StateHealthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	if b.RuleSet() != next || b.LastCommitted() != next {
		t.Fatal("commit did not install the new policy")
	}
	if st := b.Stats(); st.DegradedEntries != 0 || st.UpdatesAborted != 0 {
		t.Fatalf("watchdog fired despite commit: %+v", st)
	}
}

// TestRestartAgentClearsDegraded: the paper's recovery action resets
// the degraded machine too.
func TestRestartAgentClearsDegraded(t *testing.T) {
	k := sim.NewKernel()
	_, b := pair(t, k, Standard(), EFW())
	b.SetFailMode(FailModeClosed)
	b.BeginPolicyUpdate()
	b.AbortPolicyUpdate()
	if got := b.DegradedState(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	b.RestartAgent()
	if got := b.DegradedState(); got != StateHealthy {
		t.Fatalf("after restart: state = %v, want healthy", got)
	}
	if err := k.Run(); err != nil { // any leftover watchdog events must be inert
		t.Fatal(err)
	}
	if b.Stats().WatchdogResets != 0 {
		t.Fatalf("WatchdogResets = %d, want 0 after manual restart", b.Stats().WatchdogResets)
	}
}

// TestParseFailMode covers the CLI spellings.
func TestParseFailMode(t *testing.T) {
	cases := map[string]FailMode{
		"none": FailModeNone, "fail-closed": FailModeClosed, "fail-open": FailModeOpen,
		"closed": FailModeClosed, "open": FailModeOpen,
	}
	for s, want := range cases {
		got, ok := ParseFailMode(s)
		if !ok || got != want {
			t.Errorf("ParseFailMode(%q) = %v, %v; want %v, true", s, got, ok, want)
		}
	}
	if _, ok := ParseFailMode("bogus"); ok {
		t.Error("ParseFailMode accepted bogus")
	}
}
