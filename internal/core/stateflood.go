package core

import (
	"fmt"
	"time"

	"barbican/internal/fw"
	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/nic/conntrack"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// StatefloodEchoPort is the TCP service the stateflood victim exposes:
// a long-lived echo session rides on it, and SYN floods aim at it (a
// stateful policy only creates state for SYNs the new-connection rule
// admits, so the flood must target an open service).
const StatefloodEchoPort = 8007

// SessionDoSRatio is the stateflood denial-of-service criterion: the
// probe session counts an echo for each keepalive it sends, and the
// flood wins when fewer than half come back. A state-table flood kills
// the session by evicting its conntrack entry between keepalives —
// packets still flow, but the firewall no longer recognizes the
// connection.
const SessionDoSRatio = 0.5

// echoMsgBytes is the probe session's keepalive payload size: small and
// sparse, the worst case for sharing a state table with a flood.
const echoMsgBytes = 8

// StatefulRuleSet builds the stateflood experimental policy: depth-1
// non-matching rules, then a rule admitting new connections to the echo
// service, then the classic "allow established,related" rule, default
// deny. The shape mirrors the paper's depth sweeps while exercising the
// conntrack matchers on every packet.
func StatefulRuleSet(depth int) (*fw.RuleSet, error) {
	rules := make([]fw.Rule, 0, depth+1)
	for i := 1; i < depth; i++ {
		rules = append(rules, fw.NonMatchingRule(i))
	}
	rules = append(rules,
		fw.Rule{
			Name:      "allow-new-echo",
			Action:    fw.Allow,
			Direction: fw.In,
			Proto:     packet.ProtoTCP,
			DstPorts:  fw.Port(StatefloodEchoPort),
			States:    fw.MaskOf(fw.StateNew),
		},
		fw.Rule{
			Name:      "allow-established",
			Action:    fw.Allow,
			Direction: fw.Both,
			States:    fw.MaskOf(fw.StateEstablished, fw.StateRelated),
		},
	)
	return fw.NewRuleSet(fw.Deny, rules...)
}

// StatefloodScenario describes one state-exhaustion measurement: a
// stateful card defending a long-lived sparse TCP session while an
// attacker floods it.
type StatefloodScenario struct {
	// Device is the target's card; zero means DeviceStateful.
	Device Device
	// Depth is the rule-set depth (paper shape); zero means 64.
	Depth int
	// FloodRatePPS is the attack rate; zero disables the flood
	// (baseline).
	FloodRatePPS float64
	// FloodKind selects the attack; zero means FloodTCPSYN (the
	// state-exhaustion attack). FloodTCPACK probes the no-state path;
	// FloodUDP reproduces the paper's packet-rate attack on the same
	// card for the threshold comparison.
	FloodKind measure.FloodKind
	// SpoofCount is how many source addresses a SYN flood cycles
	// through; zero means 256. Source-port cycling alone yields only
	// 1024 distinct flow keys — as many as the card's whole table —
	// so a real state attack spoofs addresses too.
	SpoofCount int
	// EvictPolicy overrides the card's table eviction policy (zero
	// keeps the profile default, LRU).
	EvictPolicy conntrack.EvictPolicy
	// FailMode arms the degraded-mode machine. Zero leaves it off, in
	// which case a full table drops new connections (the closed
	// posture); FailModeOpen instead admits them untracked.
	FailMode nic.FailMode
	// Seed makes the run reproducible; zero means 1.
	Seed int64
	// Duration is the flooded measurement window; zero means 2s.
	Duration time.Duration
	// KeepaliveEvery is the probe session's send interval; zero means
	// 250ms. The attack's leverage is exactly this sparseness: the
	// session's entry must survive between keepalives.
	KeepaliveEvery time.Duration
}

func (s *StatefloodScenario) defaults() {
	if s.Device == 0 {
		s.Device = DeviceStateful
	}
	if s.Depth == 0 {
		s.Depth = 64
	}
	if s.FloodKind == 0 {
		s.FloodKind = measure.FloodTCPSYN
	}
	if s.SpoofCount == 0 {
		s.SpoofCount = 256
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	if s.KeepaliveEvery == 0 {
		s.KeepaliveEvery = 250 * time.Millisecond
	}
}

// StatefloodPoint is one stateflood measurement.
type StatefloodPoint struct {
	Scenario StatefloodScenario
	// SessionSent and SessionEchoed count the probe session's
	// keepalives sent during the flooded window and the echoes that
	// came back (echoes of in-window sends are collected through a
	// short drain after the flood stops).
	SessionSent   uint64
	SessionEchoed uint64
	// SessionReset reports the probe connection was reset.
	SessionReset bool
	// FloodSent counts attack packets injected.
	FloodSent uint64
	// TargetNIC and Conntrack snapshot the victim card at the end of
	// the run; CTEntries/CTCapacity give its final table occupancy.
	TargetNIC  nic.Stats
	Conntrack  conntrack.Stats
	CTEntries  int
	CTCapacity int
	// SimSeconds and WallBusy feed the executor's speedup accounting.
	SimSeconds float64
	WallBusy   time.Duration
}

// SessionRatio is the fraction of in-window keepalives that were
// echoed; 1.0 when nothing was sent (no evidence of DoS).
func (p StatefloodPoint) SessionRatio() float64 {
	if p.SessionSent == 0 {
		return 1
	}
	return float64(p.SessionEchoed) / float64(p.SessionSent)
}

// DoSed reports whether the flood denied service to the probe session.
func (p StatefloodPoint) DoSed() bool { return p.SessionRatio() < SessionDoSRatio }

// echoSession is one long-lived sparse TCP session: a client connection
// to the target's echo service exchanging a small keepalive message on
// a timer.
type echoSession struct {
	conn      *stack.Conn
	connected bool
	reset     bool
	sent      uint64
	echoBytes uint64
	stopped   bool
}

// setupEchoServer exposes the echo service on h.
func setupEchoServer(h *stack.Host) error {
	_, err := h.ListenTCP(StatefloodEchoPort, func(c *stack.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write(append([]byte(nil), b...))
		}
	})
	return err
}

// dialEcho opens a probe session from h to the echo service at dst.
func dialEcho(h *stack.Host, dst packet.IP) (*echoSession, error) {
	c, err := h.DialTCP(dst, StatefloodEchoPort)
	if err != nil {
		return nil, err
	}
	s := &echoSession{conn: c}
	c.OnConnect = func() { s.connected = true }
	c.OnData = func(b []byte) { s.echoBytes += uint64(len(b)) }
	c.OnReset = func() { s.reset = true }
	return s, nil
}

// echoed returns complete keepalive echoes received so far.
func (s *echoSession) echoed() uint64 { return s.echoBytes / echoMsgBytes }

// startKeepalive begins the periodic send loop.
func (s *echoSession) startKeepalive(k *sim.Kernel, interval time.Duration) {
	var tick func(any)
	tick = func(any) {
		if s.stopped {
			return
		}
		if s.connected && !s.reset {
			s.sent++
			_ = s.conn.Write(make([]byte, echoMsgBytes))
		}
		k.AfterCall(interval, tick, nil)
	}
	k.AfterCall(interval, tick, nil)
}

// exchange sends one keepalive and waits, reporting whether its echo
// arrived — the recovery experiment's per-flow liveness check.
func (s *echoSession) exchange(k *sim.Kernel, wait time.Duration) (bool, error) {
	before := s.echoBytes
	s.sent++
	_ = s.conn.Write(make([]byte, echoMsgBytes))
	if err := k.RunFor(wait); err != nil {
		return false, err
	}
	return s.echoBytes >= before+echoMsgBytes, nil
}

// spoofPool returns n distinct benchmarking-range source addresses
// (RFC 2544's 198.18.0.0/15) for the flood to cycle through.
func spoofPool(n int) []packet.IP {
	ips := make([]packet.IP, n)
	for i := range ips {
		ips[i] = packet.IP{198, 18, byte(i / 254), byte(1 + i%254)}
	}
	return ips
}

// RunStateflood executes one stateflood measurement: establish the
// probe session, let it reach steady state, flood for the scenario's
// window, and report what fraction of the session's keepalives
// survived.
func RunStateflood(s StatefloodScenario) (StatefloodPoint, error) {
	s.defaults()
	tb, err := NewTestbed(TestbedOptions{
		TargetDevice:   s.Device,
		Seed:           s.Seed,
		ConntrackEvict: s.EvictPolicy,
	})
	if err != nil {
		return StatefloodPoint{}, err
	}
	rules, err := StatefulRuleSet(s.Depth)
	if err != nil {
		return StatefloodPoint{}, err
	}
	tb.InstallPolicy(tb.Target, rules)
	if s.FailMode != 0 {
		tb.Target.NIC().SetFailMode(s.FailMode)
	}
	if err := setupEchoServer(tb.Target); err != nil {
		return StatefloodPoint{}, err
	}
	es, err := dialEcho(tb.Client, tb.Target.IP())
	if err != nil {
		return StatefloodPoint{}, err
	}
	// Handshake, then steady keepalives: the session's conntrack entry
	// is assured and periodically refreshed before the attack starts.
	if err := tb.Kernel.RunFor(100 * time.Millisecond); err != nil {
		return StatefloodPoint{}, err
	}
	es.startKeepalive(tb.Kernel, s.KeepaliveEvery)
	if err := tb.Kernel.RunFor(2 * s.KeepaliveEvery); err != nil {
		return StatefloodPoint{}, err
	}

	var flood *measure.Flooder
	if s.FloodRatePPS > 0 {
		cfg := measure.FloodConfig{
			Kind:    s.FloodKind,
			RatePPS: s.FloodRatePPS,
		}
		switch s.FloodKind {
		case measure.FloodTCPSYN:
			// State exhaustion: SYNs the new-connection rule admits,
			// from many spoofed sources so each creates a distinct
			// table entry.
			cfg.DstPort = StatefloodEchoPort
			cfg.SpoofSources = spoofPool(s.SpoofCount)
		case measure.FloodTCPACK:
			// No-state probe: every packet classifies INVALID and is
			// dropped after a lookup; no entries are ever created.
			cfg.DstPort = StatefloodEchoPort
		default:
			// Packet-rate reference: UDP to the closed flood port is
			// denied at full rule depth, never touching the table.
			cfg.DstPort = FloodPort
		}
		flood = measure.NewFlooder(tb.Attacker, tb.Target.IP(), cfg)
		flood.Start()
		if err := tb.Kernel.RunFor(200 * time.Millisecond); err != nil {
			return StatefloodPoint{}, err
		}
	}

	sent0, echo0 := es.sent, es.echoed()
	if err := tb.Kernel.RunFor(s.Duration); err != nil {
		return StatefloodPoint{}, err
	}
	sent1 := es.sent
	es.stopped = true
	if flood != nil {
		flood.Stop()
	}
	// Drain: echoes of in-window keepalives that were still in flight
	// when the window closed.
	if err := tb.Kernel.RunFor(300 * time.Millisecond); err != nil {
		return StatefloodPoint{}, err
	}

	p := StatefloodPoint{
		Scenario:     s,
		SessionSent:  sent1 - sent0,
		SessionReset: es.reset,
		TargetNIC:    tb.Target.NIC().Stats(),
		Conntrack:    tb.Target.NIC().ConntrackStats(),
		SimSeconds:   tb.Kernel.Now().Seconds(),
		WallBusy:     tb.Kernel.WallBusy(),
	}
	if echoed := es.echoed(); echoed > echo0 {
		p.SessionEchoed = echoed - echo0
	}
	if p.SessionEchoed > p.SessionSent {
		p.SessionEchoed = p.SessionSent
	}
	if ct := tb.Target.NIC().Conntrack(); ct != nil {
		p.CTEntries, p.CTCapacity = ct.Len(), ct.Cap()
	}
	if flood != nil {
		p.FloodSent = flood.Sent()
	}
	return p, nil
}

// MinStatefloodResult reports the minimum-rate search for a stateflood
// scenario.
type MinStatefloodResult struct {
	Scenario StatefloodScenario
	// Found reports whether any rate within the search bounds denied
	// service to the probe session.
	Found bool
	// RatePPS is the minimum flood rate that did.
	RatePPS float64
	// Probes counts measurements; SimSeconds and WallBusy accumulate
	// their cost.
	Probes     int
	SimSeconds float64
	WallBusy   time.Duration
}

// MinStatefloodRate finds the minimum flood rate that denies service to
// the probe session, by the same galloping bisection as MinFloodRate
// but with the session-survival criterion instead of the bandwidth one.
// The scenario's FloodRatePPS is ignored; each probe builds a fresh
// testbed.
func MinStatefloodRate(s StatefloodScenario) (MinStatefloodResult, error) {
	return MinStatefloodRateFrom(s, 0)
}

// MinStatefloodRateFrom is MinStatefloodRate warm-started from a
// neighboring result (see MinFloodRateFrom); hint <= 0 runs the cold
// search.
func MinStatefloodRateFrom(s StatefloodScenario, hint float64) (MinStatefloodResult, error) {
	s.defaults()
	res := MinStatefloodResult{Scenario: s}

	probe := func(rate float64) (bool, error) {
		sc := s
		sc.FloodRatePPS = rate
		p, err := RunStateflood(sc)
		if err != nil {
			return false, err
		}
		res.Probes++
		res.SimSeconds += p.SimSeconds
		res.WallBusy += p.WallBusy
		return p.DoSed(), nil
	}

	var lo, hi float64
	if hint > 0 {
		lo, hi = hint, hint
		if lo < MinSearchRatePPS {
			lo = MinSearchRatePPS
		}
		if hi > MaxSearchRatePPS {
			hi = MaxSearchRatePPS
		}
		ok, err := probe(hi)
		if err != nil {
			return res, err
		}
		step := float64(SearchResolutionPPS)
		if ok {
			res.Found = true
			for {
				lo = hi - step
				if lo <= MinSearchRatePPS {
					lo = MinSearchRatePPS
				}
				ok2, err := probe(lo)
				if err != nil {
					return res, err
				}
				if !ok2 {
					break
				}
				hi = lo
				if lo == MinSearchRatePPS {
					res.RatePPS = lo
					return res, nil
				}
				step *= 2
			}
		} else {
			for {
				hi = lo + step
				if hi >= MaxSearchRatePPS {
					hi = MaxSearchRatePPS
				}
				ok2, err := probe(hi)
				if err != nil {
					return res, err
				}
				if ok2 {
					res.Found = true
					break
				}
				lo = hi
				if hi == MaxSearchRatePPS {
					return res, nil
				}
				step *= 2
			}
		}
	} else {
		lo, hi = float64(MinSearchRatePPS), float64(MaxSearchRatePPS)
		ok, err := probe(hi)
		if err != nil {
			return res, err
		}
		if !ok {
			return res, nil
		}
		res.Found = true
		if ok2, err := probe(lo); err != nil {
			return res, err
		} else if ok2 {
			res.RatePPS = lo
			return res, nil
		}
	}
	for hi-lo > SearchResolutionPPS {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return res, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.RatePPS = hi
	return res, nil
}

// StateRecoveryScenario describes the state-desync experiment: a
// stateful card goes through a fail-open degraded episode mid-session,
// and the configured StateRecovery policy decides what happens to
// connection state when enforcement returns.
type StateRecoveryScenario struct {
	// Depth is the rule-set depth; zero means 64.
	Depth int
	// Recovery is the card's state-recovery policy.
	Recovery nic.StateRecovery
	// Seed makes the run reproducible; zero means 1.
	Seed int64
}

// StateRecoveryResult reports which flows survived the degraded
// episode. The desync hazard is MidOutage: a connection established
// while the card failed open has no conntrack entry, so under
// RecoveryKeep the restored established-only policy severs it even
// though both endpoints consider it healthy.
type StateRecoveryResult struct {
	Scenario StateRecoveryScenario
	// PreOutageOK: a flow established (and tracked) before the outage
	// exchanges data after recovery.
	PreOutageOK bool
	// MidOutageOK: a flow established during the fail-open outage
	// exchanges data after recovery.
	MidOutageOK bool
	// NewFlowOK: a flow established after recovery exchanges data.
	NewFlowOK bool
	// WatchdogResets confirms the card actually degraded and recovered.
	WatchdogResets uint64
	SimSeconds     float64
	WallBusy       time.Duration
}

// RunStateRecovery executes the state-desync experiment for one
// recovery policy.
func RunStateRecovery(s StateRecoveryScenario) (StateRecoveryResult, error) {
	if s.Depth == 0 {
		s.Depth = 64
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	res := StateRecoveryResult{Scenario: s}
	tb, err := NewTestbed(TestbedOptions{TargetDevice: DeviceStateful, Seed: s.Seed})
	if err != nil {
		return res, err
	}
	rules, err := StatefulRuleSet(s.Depth)
	if err != nil {
		return res, err
	}
	tb.InstallPolicy(tb.Target, rules)
	card := tb.Target.NIC()
	card.SetFailMode(nic.FailModeOpen)
	card.SetStateRecovery(s.Recovery)
	if err := setupEchoServer(tb.Target); err != nil {
		return res, err
	}

	// Flow A: established and assured while the card is healthy.
	a, err := dialEcho(tb.Client, tb.Target.IP())
	if err != nil {
		return res, err
	}
	if err := tb.Kernel.RunFor(100 * time.Millisecond); err != nil {
		return res, err
	}
	if ok, err := a.exchange(tb.Kernel, 50*time.Millisecond); err != nil {
		return res, err
	} else if !ok {
		return res, fmt.Errorf("core: probe session dead before outage")
	}

	// Outage: a policy push torn down mid-flight degrades the card,
	// which fails open. The watchdog restores enforcement ~100ms later.
	card.BeginPolicyUpdate()
	card.AbortPolicyUpdate()
	if card.DegradedState() != nic.StateDegraded {
		return res, fmt.Errorf("core: card did not degrade")
	}

	// Flow B: established during the outage — it passes fail-open, so
	// the card never sees state for it.
	b, err := dialEcho(tb.Client, tb.Target.IP())
	if err != nil {
		return res, err
	}
	if err := tb.Kernel.RunFor(30 * time.Millisecond); err != nil {
		return res, err
	}
	if ok, err := b.exchange(tb.Kernel, 30*time.Millisecond); err != nil {
		return res, err
	} else if !ok {
		return res, fmt.Errorf("core: mid-outage session dead during fail-open")
	}

	// Let the watchdog recover.
	if err := tb.Kernel.RunFor(200 * time.Millisecond); err != nil {
		return res, err
	}
	if card.DegradedState() != nic.StateHealthy {
		return res, fmt.Errorf("core: card did not recover")
	}
	res.WatchdogResets = card.Stats().WatchdogResets

	if res.PreOutageOK, err = a.exchange(tb.Kernel, 200*time.Millisecond); err != nil {
		return res, err
	}
	if res.MidOutageOK, err = b.exchange(tb.Kernel, 200*time.Millisecond); err != nil {
		return res, err
	}

	// Flow C: established after recovery.
	c, err := dialEcho(tb.Client, tb.Target.IP())
	if err != nil {
		return res, err
	}
	if err := tb.Kernel.RunFor(100 * time.Millisecond); err != nil {
		return res, err
	}
	if res.NewFlowOK, err = c.exchange(tb.Kernel, 200*time.Millisecond); err != nil {
		return res, err
	}

	res.SimSeconds = tb.Kernel.Now().Seconds()
	res.WallBusy = tb.Kernel.WallBusy()
	return res, nil
}
