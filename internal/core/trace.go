package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"barbican/internal/fw"
	"barbican/internal/obs"
	"barbican/internal/obs/tracing"
	"barbican/internal/stack"
)

// AttachTracer creates a packet-lifecycle tracer on the testbed's
// kernel and threads it through every pipeline component: each host's
// NIC (which samples egress traffic) and stack, each access link's
// station-side direction, and the switch (which covers the
// switch-side directions). Returns the tracer for export.
func (tb *Testbed) AttachTracer(opt tracing.Options) *tracing.Tracer {
	tr := tracing.New(tb.Kernel, opt)
	for _, h := range tb.hosts() {
		h.SetTracer(tr)
		h.NIC().SetTracer(tr)
		h.NIC().Endpoint().SetTracer(tr)
	}
	tb.Switch.SetTracer(tr)
	return tr
}

// hosts lists the standard testbed hosts in a fixed order.
func (tb *Testbed) hosts() []*stack.Host {
	return []*stack.Host{tb.Client, tb.Target, tb.Attacker, tb.PolicyServer}
}

// RuleHit is one rule's slice of a run's firewall work: how often it
// matched and the predicted per-packet cost/latency of a packet that
// walks to (and matches at) its position.
type RuleHit struct {
	Index     int           `json:"index"`
	Text      string        `json:"rule"`
	Hits      uint64        `json:"hits"`
	CostUnits float64       `json:"cost_units"`
	Latency   time.Duration `json:"latency_ns"`
}

// RuleAttribution is the per-rule breakdown of the target's policy
// enforcement over one run: hit counts from the live rule-set plus
// the profile's predicted walk cost at each rule position. Default*
// describe packets that walked the full depth without matching.
type RuleAttribution struct {
	Device         string        `json:"device"`
	Evals          uint64        `json:"evals"`
	DefaultHits    uint64        `json:"default_hits"`
	DefaultCost    float64       `json:"default_cost_units"`
	DefaultLatency time.Duration `json:"default_latency_ns"`
	Rules          []RuleHit     `json:"rules"`
}

// ruleAttribution snapshots the target's enforcement-point counters.
// Returns nil when the target enforces no policy.
func ruleAttribution(tb *Testbed) *RuleAttribution {
	rs := tb.Target.NIC().RuleSet()
	if rs == nil && tb.Target.Firewall() != nil {
		rs = tb.Target.Firewall().RuleSet()
	}
	if rs == nil {
		return nil
	}
	profile := tb.Target.NIC().Profile()
	a := &RuleAttribution{
		Device:      profile.Name,
		Evals:       rs.EvalCount(),
		DefaultHits: rs.DefaultHits(),
		DefaultCost: profile.Cost(rs.Len(), 0),
	}
	a.DefaultLatency = profile.ServiceTime(a.DefaultCost)
	rs.Each(func(i int, r *fw.Rule) bool {
		cost := profile.Cost(i, 0)
		a.Rules = append(a.Rules, RuleHit{
			Index:     i,
			Text:      r.String(),
			Hits:      rs.MatchCount(i),
			CostUnits: cost,
			Latency:   profile.ServiceTime(cost),
		})
		return true
	})
	return a
}

// dropCounters flattens the target NIC's per-reason drop arrays into
// a name → count map (nonzero reasons only, rx and tx merged), the
// authoritative totals embedded in trace exports.
func dropCounters(in *Instrumentation) map[string]uint64 {
	if in == nil || in.target == nil {
		return nil
	}
	rx, tx := in.target.DropCounts()
	out := make(map[string]uint64)
	for _, r := range tracing.DropReasons() {
		if n := rx[r] + tx[r]; n > 0 {
			out[r.String()] = n
		}
	}
	return out
}

// dropCounterTracks converts the flight recorder's per-reason target
// drop series into Perfetto counter tracks (nonzero series only).
func dropCounterTracks(in *Instrumentation) []tracing.CounterTrack {
	if in == nil || in.Recorder == nil {
		return nil
	}
	var tracks []tracing.CounterTrack
	for _, r := range tracing.DropReasons() {
		id := fmt.Sprintf(`nic_drops_total{dir="rx",host="target",reason=%q}`, r.String())
		series, ok := in.Recorder.Series(id)
		if !ok {
			continue
		}
		var points []tracing.CounterPoint
		nonzero := false
		for _, pt := range series.Points {
			if pt.V != 0 {
				nonzero = true
			}
			points = append(points, tracing.CounterPoint{At: pt.T, Value: pt.V})
		}
		if !nonzero {
			continue
		}
		tracks = append(tracks, tracing.CounterTrack{Name: "target drops " + r.String(), Points: points})
	}
	return tracks
}

// WriteTraceArtifacts writes the run's packet traces to dir as
// <base>.trace.json (Perfetto trace_event format, embedding the
// authoritative per-reason drop totals and recorder drop tracks) and
// <base>.trace.txt (tcpdump-style annotated log). Returns the written
// paths; no-op when the run was not traced.
func (in *Instrumentation) WriteTraceArtifacts(dir, base string) ([]string, error) {
	if in == nil || in.Tracer == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	opt := tracing.ExportOptions{
		Drops:    dropCounters(in),
		Counters: dropCounterTracks(in),
	}
	jsonPath := filepath.Join(dir, obs.SanitizeName(base)+".trace.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		return nil, err
	}
	if err := in.Tracer.WritePerfetto(jf, opt); err != nil {
		jf.Close()
		return nil, err
	}
	if err := jf.Close(); err != nil {
		return nil, err
	}
	textPath := filepath.Join(dir, obs.SanitizeName(base)+".trace.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		return nil, err
	}
	if err := in.Tracer.WriteText(tf); err != nil {
		tf.Close()
		return nil, err
	}
	if err := tf.Close(); err != nil {
		return nil, err
	}
	return []string{jsonPath, textPath}, nil
}
