// Package core implements the paper's contribution as a reusable
// library: the validation methodology for NIC-based distributed
// firewalls. It builds the four-host testbed (policy server, attacker,
// client, target on one 100 Mbps switch), runs the paper's measurement
// scenarios against a chosen firewall device, and searches for the
// minimum flood rate that causes denial of service.
package core

import (
	"fmt"

	"barbican/internal/fw"
	"barbican/internal/hostfw"
	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/nic/conntrack"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// Device identifies a firewall configuration under validation.
type Device int

// Devices the methodology knows how to build.
const (
	// DeviceStandard is the non-filtering control NIC (Intel EEPro 100).
	DeviceStandard Device = iota + 1
	// DeviceEFW is the 3Com Embedded Firewall.
	DeviceEFW
	// DeviceADF is the Autonomic Distributed Firewall with standard rules.
	DeviceADF
	// DeviceADFVPG is the ADF enforcing virtual private groups.
	DeviceADFVPG
	// DeviceIPTables is the software-firewall baseline: a standard NIC
	// with filtering in the host.
	DeviceIPTables
	// DeviceNextGen is the hypothetical flood-tolerant card of the
	// paper's conclusion (extension experiment EXT1).
	DeviceNextGen
	// DeviceStateful is the NextGen card with connection tracking: the
	// compiled/cached fast path plus a hard-bounded conntrack table in
	// card SRAM (extension experiment EXT4, the stateflood family).
	DeviceStateful
)

// String names the device as in the paper's figures.
func (d Device) String() string {
	switch d {
	case DeviceStandard:
		return "Standard NIC"
	case DeviceEFW:
		return "EFW"
	case DeviceADF:
		return "ADF"
	case DeviceADFVPG:
		return "ADF (VPG)"
	case DeviceIPTables:
		return "iptables"
	case DeviceNextGen:
		return "NextGenFW"
	case DeviceStateful:
		return "StatefulFW"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// Devices returns all devices, in presentation order.
func Devices() []Device {
	return []Device{DeviceStandard, DeviceIPTables, DeviceEFW, DeviceADF, DeviceADFVPG}
}

// Well-known testbed addresses.
var (
	PolicyServerIP = packet.MustIP("10.0.0.10")
	AttackerIP     = packet.MustIP("10.0.0.66")
	ClientIP       = packet.MustIP("10.0.0.1")
	TargetIP       = packet.MustIP("10.0.0.2")
)

// TestbedOptions configures testbed construction.
type TestbedOptions struct {
	// ClientDevice and TargetDevice pick the NIC/firewall on the
	// measurement endpoints; zero means DeviceStandard.
	ClientDevice, TargetDevice Device
	// Seed makes runs reproducible; zero means 1.
	Seed int64
	// SuppressFloodResponses disables the target's RST/ICMP responses to
	// closed ports (ablation ABL1); real stacks respond.
	SuppressFloodResponses bool
	// EagerVPGDecrypt makes filtering cards decrypt sealed traffic
	// before rule matching (ablation ABL2); the real ADF is lazy.
	EagerVPGDecrypt bool
	// UseARP makes hosts resolve neighbors over the wire instead of the
	// default static table. Experiments default to static resolution so
	// measurements exclude neighbor-discovery warmup.
	UseARP bool
	// ConntrackEvict overrides the eviction policy of any conntrack-
	// equipped card built by this testbed (zero keeps the profile's
	// default). The stateflood experiments sweep this.
	ConntrackEvict conntrack.EvictPolicy
}

// Testbed is the paper's experimental network: four hosts on one
// 100 Mbps store-and-forward switch.
type Testbed struct {
	Kernel *sim.Kernel
	Switch *link.Switch

	PolicyServer *stack.Host
	Attacker     *stack.Host
	Client       *stack.Host
	Target       *stack.Host

	macs    map[packet.IP]packet.MAC
	devices map[*stack.Host]Device
	nextMAC byte
	eager   bool
	useARP  bool
	ctEvict conntrack.EvictPolicy
}

// NewTestbed builds the four-host testbed.
func NewTestbed(opts TestbedOptions) (*Testbed, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ClientDevice == 0 {
		opts.ClientDevice = DeviceStandard
	}
	if opts.TargetDevice == 0 {
		opts.TargetDevice = DeviceStandard
	}
	k := sim.NewKernel(sim.WithSeed(opts.Seed))
	tb := &Testbed{
		Kernel:  k,
		Switch:  link.NewSwitch(k, link.SwitchConfig{Link: link.Config{QueueFrames: 512}}),
		macs:    make(map[packet.IP]packet.MAC),
		devices: make(map[*stack.Host]Device),
		eager:   opts.EagerVPGDecrypt,
		useARP:  opts.UseARP,
		ctEvict: opts.ConntrackEvict,
	}
	var err error
	if tb.PolicyServer, err = tb.AddHost("policy-server", PolicyServerIP, DeviceStandard, !opts.SuppressFloodResponses); err != nil {
		return nil, err
	}
	if tb.Attacker, err = tb.AddHost("attacker", AttackerIP, DeviceStandard, !opts.SuppressFloodResponses); err != nil {
		return nil, err
	}
	if tb.Client, err = tb.AddHost("client", ClientIP, opts.ClientDevice, !opts.SuppressFloodResponses); err != nil {
		return nil, err
	}
	if tb.Target, err = tb.AddHost("target", TargetIP, opts.TargetDevice, !opts.SuppressFloodResponses); err != nil {
		return nil, err
	}
	return tb, nil
}

// AddHost attaches an additional host to the switch (the testbed's four
// standard hosts are created automatically).
func (tb *Testbed) AddHost(name string, ip packet.IP, device Device, respond bool) (*stack.Host, error) {
	if _, dup := tb.macs[ip]; dup {
		return nil, fmt.Errorf("core: duplicate host address %v", ip)
	}
	tb.nextMAC++
	mac := packet.MAC{0x02, 0x42, 0, 0, 0, tb.nextMAC}
	tb.macs[ip] = mac

	var profile nic.Profile
	var fwall *hostfw.Firewall
	switch device {
	case DeviceStandard, DeviceIPTables:
		profile = nic.Standard()
	case DeviceEFW:
		profile = nic.EFW()
	case DeviceADF, DeviceADFVPG:
		profile = nic.ADF()
		profile.EagerVPGDecrypt = tb.eager
	case DeviceNextGen:
		profile = nic.NextGen()
	case DeviceStateful:
		profile = nic.Stateful()
	default:
		return nil, fmt.Errorf("core: unknown device %v", device)
	}
	if device == DeviceIPTables {
		fwall = hostfw.New(tb.Kernel, hostfw.IPTables())
	}
	if profile.ConntrackEntries > 0 && tb.ctEvict != 0 {
		profile.ConntrackEvict = tb.ctEvict
	}

	card := nic.New(tb.Kernel, mac, profile, tb.Switch.NewPort())
	var resolve stack.Resolver
	if !tb.useARP {
		resolve = func(ip packet.IP) (packet.MAC, bool) {
			m, ok := tb.macs[ip]
			return m, ok
		}
	}
	h, err := stack.NewHost(tb.Kernel, stack.Config{
		Name:            name,
		IP:              ip,
		NIC:             card,
		Resolve:         resolve,
		Firewall:        fwall,
		RespondToFloods: respond,
	})
	if err != nil {
		return nil, err
	}
	tb.devices[h] = device
	return h, nil
}

// DeviceOf returns the device a host was built with.
func (tb *Testbed) DeviceOf(h *stack.Host) Device { return tb.devices[h] }

// InstallPolicy installs a rule set on the host's enforcement point: the
// host firewall for DeviceIPTables, the NIC otherwise. A nil rule set
// removes filtering.
func (tb *Testbed) InstallPolicy(h *stack.Host, rs *fw.RuleSet) {
	if tb.devices[h] == DeviceIPTables {
		h.Firewall().Install(rs)
		return
	}
	h.NIC().InstallRuleSet(rs)
}

// SetupVPG creates a group containing the given hosts and provisions it
// on each host's card.
func (tb *Testbed) SetupVPG(name, passphrase string, members ...*stack.Host) (*vpg.Group, error) {
	ips := make([]packet.IP, len(members))
	for i, m := range members {
		ips[i] = m.IP()
	}
	g, err := vpg.NewGroup(name, vpg.DeriveKey(passphrase), ips...)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if err := m.NIC().InstallGroup(g, m.IP()); err != nil {
			return nil, err
		}
	}
	return g, nil
}
