package core

import (
	"testing"
	"time"

	"barbican/internal/faults"
	"barbican/internal/telemetry"
)

// TestDetectionBounds is the seeded detection smoke: a fixed-rate
// denied flood against the NextGen card (no overload, telemetry
// unimpeded) must alert within tight, explainable bounds — no earlier
// than two report intervals (the detector needs RiseCount=2 hot
// samples) and well before one second.
func TestDetectionBounds(t *testing.T) {
	p, err := RunDetection(DetectionScenario{
		Device: DeviceNextGen, Depth: 64,
		FloodRatePPS: 8000, Duration: 3 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Detected {
		t.Fatalf("denied 8000 pps flood went undetected; final state %v", p.FinalState)
	}
	lo := 2 * telemetry.DefaultReportInterval
	if p.TimeToDetect < lo || p.TimeToDetect > time.Second {
		t.Errorf("time-to-detect = %v, want within [%v, 1s]", p.TimeToDetect, lo)
	}
	if p.FalseAlerts != 0 {
		t.Errorf("false alerts = %d on a quiet baseline, want 0", p.FalseAlerts)
	}
	if p.ExposedTotal != 0 {
		t.Errorf("denied flood exposed %d packets, want 0", p.ExposedTotal)
	}
}

// TestDetectionClosesExposure: an admitted flood against the ADF card
// must be detected, trigger the responsive push, and the converged
// blocklist must stop the exposure counter well short of the flood
// total.
func TestDetectionClosesExposure(t *testing.T) {
	p, err := RunDetection(DetectionScenario{
		Device: DeviceADF, Depth: 64, FloodAllowed: true,
		FloodRatePPS: 8000, Duration: 3 * time.Second, Seed: 7,
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Detected || !p.Converged {
		t.Fatalf("detected=%v converged=%v (err %q), want both", p.Detected, p.Converged, p.PushError)
	}
	if p.ExposedAtDetect == 0 {
		t.Error("admitted flood shows zero exposure at detection; sink accounting broken")
	}
	if p.ExposedAtDetect > p.ExposedAtConverge || p.ExposedAtConverge > p.ExposedTotal {
		t.Errorf("exposure not monotonic: detect=%d converge=%d total=%d",
			p.ExposedAtDetect, p.ExposedAtConverge, p.ExposedTotal)
	}
	// The mitigation must actually bite: after convergence the card
	// denies the flood, so total exposure stays close to the converge
	// mark instead of tracking FloodSent.
	if p.ExposedTotal >= p.FloodSent {
		t.Errorf("exposure %d never separated from flood volume %d; mitigation had no effect",
			p.ExposedTotal, p.FloodSent)
	}
	if p.FinalState != telemetry.AlertHealthy {
		t.Errorf("final state = %v after mitigation settled, want healthy", p.FinalState)
	}
}

// TestDetectionSilenceCatchesLockup: the EFW Deny-All lockup silences
// the victim's own telemetry; the collector's staleness watchdog must
// still raise the alert. With the watchdog disabled the flood goes
// undetected — the ablation that proves silence is the signal.
func TestDetectionSilenceCatchesLockup(t *testing.T) {
	base := DetectionScenario{
		Device: DeviceEFW, Depth: 64,
		FloodRatePPS: 8000, Duration: 3 * time.Second, Seed: 7,
	}
	p, err := RunDetection(base)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TargetLocked {
		t.Fatal("EFW did not lock up under a denied 8000 pps flood; scenario no longer reproduces the paper's lockup")
	}
	if !p.Detected {
		t.Fatalf("lockup went undetected with the silence watchdog armed; final state %v", p.FinalState)
	}

	ablated := base
	ablated.SilenceAfter = -1
	q, err := RunDetection(ablated)
	if err != nil {
		t.Fatal(err)
	}
	if q.Detected {
		t.Errorf("lockup detected at %v without the watchdog; expected the mute victim to go unnoticed (report-driven detector only)",
			q.TimeToDetect)
	}
}

// TestDetectionTelemetryLossWidensWindow: management-plane loss must
// measurably delay detection — lost reports are lost signal. This is
// the core chaos acceptance property, checked at scenario level.
func TestDetectionTelemetryLossWidensWindow(t *testing.T) {
	// 6000 pps overloads the ADF card mildly: drops and backlog rise
	// but the agent's reports still escape, so detection is
	// report-driven on the clean channel and only falls back to the
	// silence watchdog when the fault plan eats the reports. (At
	// 8000 pps the flood itself squeezes out all telemetry and both
	// conditions collapse onto the silence path.)
	base := DetectionScenario{
		Device: DeviceADF, Depth: 64, FloodAllowed: true,
		FloodRatePPS: 6000, Duration: 3 * time.Second, Seed: 7,
		Respond: true,
	}
	clean, err := RunDetection(base)
	if err != nil {
		t.Fatal(err)
	}

	lossy := base
	lossy.MgmtFaults = faults.Plan{Loss: 0.6}
	lossy.FaultSeed = 42
	faulted, err := RunDetection(lossy)
	if err != nil {
		t.Fatal(err)
	}

	if !clean.Detected || !faulted.Detected {
		t.Fatalf("detected: clean=%v faulted=%v, want both", clean.Detected, faulted.Detected)
	}
	if faulted.Gaps == 0 {
		t.Error("60%% loss produced no sequence gaps; fault plan not reaching telemetry")
	}
	if faulted.TimeToDetect <= clean.TimeToDetect {
		t.Errorf("time-to-detect under 60%% loss (%v) not wider than clean (%v)",
			faulted.TimeToDetect, clean.TimeToDetect)
	}
	if faulted.ExposedAtDetect <= clean.ExposedAtDetect {
		t.Errorf("exposure at detect under loss (%d) not wider than clean (%d)",
			faulted.ExposedAtDetect, clean.ExposedAtDetect)
	}
}

// TestDetectionDeterministicPoints: the same scenario run twice must
// produce identical measurements — the contract the experiment-level
// serial/parallel golden builds on.
func TestDetectionDeterministicPoints(t *testing.T) {
	s := DetectionScenario{
		Device: DeviceADF, Depth: 64, FloodAllowed: true,
		FloodRatePPS: 8000, Duration: 2 * time.Second, Seed: 11,
		MgmtFaults: faults.Plan{Loss: 0.3}, FaultSeed: 42,
		Respond: true,
	}
	a, err := RunDetection(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDetection(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeToDetect != b.TimeToDetect || a.ExposedAtDetect != b.ExposedAtDetect ||
		a.ExposedAtConverge != b.ExposedAtConverge || a.Reports != b.Reports ||
		a.Gaps != b.Gaps || len(a.Timeline) != len(b.Timeline) {
		t.Errorf("repeat run diverged:\n a: ttd=%v exp=%d/%d reports=%d gaps=%d tl=%d\n b: ttd=%v exp=%d/%d reports=%d gaps=%d tl=%d",
			a.TimeToDetect, a.ExposedAtDetect, a.ExposedAtConverge, a.Reports, a.Gaps, len(a.Timeline),
			b.TimeToDetect, b.ExposedAtDetect, b.ExposedAtConverge, b.Reports, b.Gaps, len(b.Timeline))
	}
	for i := range a.Timeline {
		if a.Timeline[i] != b.Timeline[i] {
			t.Errorf("timeline[%d] diverged: %+v vs %+v", i, a.Timeline[i], b.Timeline[i])
		}
	}
}
