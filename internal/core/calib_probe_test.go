package core

import (
	"testing"
	"time"
)

// TestCalibrationProbe prints the raw calibration surface. It is skipped
// in -short mode and exists to inspect model behaviour when tuning
// profiles; the binding assertions live in scenario_test.go and the
// experiment package.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, dev := range []Device{DeviceStandard, DeviceIPTables, DeviceEFW, DeviceADF} {
		for _, depth := range []int{1, 8, 16, 24, 32, 48, 64} {
			p, err := RunBandwidth(Scenario{Device: dev, Depth: depth, Duration: 2 * time.Second})
			if err != nil {
				t.Fatalf("%v depth %d: %v", dev, depth, err)
			}
			t.Logf("fig2 %-12v depth=%-3d %6.1f Mbps", dev, depth, p.Mbps())
		}
	}
	for _, depth := range []int{1, 2, 3, 4} {
		p, err := RunBandwidth(Scenario{Device: DeviceADFVPG, Depth: depth, Duration: 2 * time.Second})
		if err != nil {
			t.Fatalf("vpg depth %d: %v", depth, err)
		}
		t.Logf("fig2 %-12v vpgs=%-3d %6.1f Mbps", DeviceADFVPG, depth, p.Mbps())
	}
	for _, dev := range []Device{DeviceStandard, DeviceIPTables, DeviceEFW, DeviceADF, DeviceADFVPG} {
		for _, rate := range []float64{0, 2000, 4000, 6000, 8000, 10000, 12500} {
			p, err := RunBandwidth(Scenario{
				Device: dev, Depth: 1, FloodRatePPS: rate, FloodAllowed: true,
				Duration: 2 * time.Second,
			})
			if err != nil {
				t.Fatalf("%v flood %v: %v", dev, rate, err)
			}
			t.Logf("fig3a %-12v flood=%-6.0f %6.1f Mbps locked=%v", dev, rate, p.Mbps(), p.TargetLocked)
		}
	}
}
