package core

import (
	"fmt"
	"time"

	"barbican/internal/faults"
	"barbican/internal/fw"
	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/obs/profile"
	"barbican/internal/packet"
	"barbican/internal/trace"
)

// FloodPort is the (closed) UDP port the flood generator targets. Allowed
// flood packets reaching the target's stack elicit ICMP port-unreachable
// responses that transit the firewall card outbound.
const FloodPort = 7

// VPGGroupName is the matching group used in VPG scenarios.
const VPGGroupName = "psq"

// Scenario describes one measurement configuration of the paper's
// methodology.
type Scenario struct {
	// Device is the target's firewall configuration.
	Device Device
	// Depth is the number of rules traversed before the action rule
	// (the paper's rule-set depth); for DeviceADFVPG it counts VPGs.
	// Zero means no policy installed at all.
	Depth int
	// FloodRatePPS, when positive, runs a flood from the attacker at
	// this rate during the measurement.
	FloodRatePPS float64
	// FloodAllowed selects the paper's two rule-set classes: the action
	// rule either allows the flood packets (true) or denies them.
	FloodAllowed bool
	// FloodKind is the flood traffic type; zero means UDP.
	FloodKind measure.FloodKind
	// FloodFragmented splits flood packets into IP fragments (extension
	// EXT3): later fragments carry no ports, so a port-based deny rule
	// only ever stops the first fragment of each packet.
	FloodFragmented bool
	// UseUDP measures raw UDP delivery instead of TCP goodput. The
	// paper's iperf runs used the default protocol (TCP), whose collapse
	// under loss is what turns card saturation into "0 Mbps available".
	UseUDP bool
	// Duration is the measurement window; zero uses the tool default.
	Duration time.Duration
	// Seed seeds the simulation; zero means 1.
	Seed int64
	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan to both directions of the target's access link.
	Faults *faults.Plan
	// FaultSeed seeds the fault injectors; zero means Seed.
	FaultSeed int64

	// SuppressFloodResponses disables victim RST/ICMP responses
	// (ablation ABL1).
	SuppressFloodResponses bool
	// EagerVPGDecrypt makes the ADF decrypt before rule matching
	// (ablation ABL2).
	EagerVPGDecrypt bool
	// TrailingRules appends non-matching rules after the action rule
	// (ablation ABL3; the paper observed they are free).
	TrailingRules int
}

// BandwidthPoint is the outcome of a bandwidth scenario.
type BandwidthPoint struct {
	Scenario     Scenario
	Iperf        measure.IperfResult
	FloodSent    uint64
	TargetLocked bool
	TargetNIC    nic.Stats
	// Attribution breaks the target's policy enforcement down per
	// rule (hits, predicted cost/latency); nil when unfiltered.
	Attribution *RuleAttribution
	// SimSeconds and WallBusy report how much virtual time the point's
	// kernel simulated and how much wall clock it burned doing so — the
	// inputs to the executor's sim-seconds-per-wall-second accounting.
	SimSeconds float64
	WallBusy   time.Duration
	// CostProfile is the run's merged cost-domain card profile; nil
	// unless the run was profiled (see RunBandwidthObserved). Excluded
	// from point serialization — profiles have their own artifacts.
	CostProfile *profile.Data `json:"-"`
}

// Mbps returns the measured available bandwidth.
func (p BandwidthPoint) Mbps() float64 { return p.Iperf.Mbps }

// HTTPPoint is the outcome of an HTTP load scenario.
type HTTPPoint struct {
	Scenario   Scenario
	Load       measure.HTTPLoadResult
	SimSeconds float64
	WallBusy   time.Duration
}

// buildTestbed constructs and polices a testbed for the scenario.
func buildTestbed(s Scenario) (*Testbed, error) {
	clientDevice := DeviceStandard
	if s.Device == DeviceADFVPG {
		clientDevice = DeviceADFVPG
	}
	tb, err := NewTestbed(TestbedOptions{
		ClientDevice:           clientDevice,
		TargetDevice:           s.Device,
		Seed:                   s.Seed,
		SuppressFloodResponses: s.SuppressFloodResponses,
		EagerVPGDecrypt:        s.EagerVPGDecrypt,
	})
	if err != nil {
		return nil, err
	}
	if s.Faults != nil {
		seed := s.FaultSeed
		if seed == 0 {
			seed = s.Seed
		}
		if seed == 0 {
			seed = 1
		}
		faults.Attach(tb.Target.NIC().Endpoint(), *s.Faults, seed)
	}
	if s.Depth <= 0 {
		return tb, nil
	}

	if s.Device == DeviceADFVPG {
		if _, err := tb.SetupVPG(VPGGroupName, "validation", tb.Client, tb.Target); err != nil {
			return nil, err
		}
		targetRules, err := vpgRuleSet(s.Depth, tb.Target.IP(), s.TrailingRules)
		if err != nil {
			return nil, err
		}
		clientRules, err := vpgRuleSet(s.Depth, tb.Client.IP(), s.TrailingRules)
		if err != nil {
			return nil, err
		}
		tb.InstallPolicy(tb.Target, targetRules)
		tb.InstallPolicy(tb.Client, clientRules)
		return tb, nil
	}

	rules, err := standardRuleSet(s.Depth, s.FloodAllowed || s.FloodRatePPS == 0, s.TrailingRules)
	if err != nil {
		return nil, err
	}
	tb.InstallPolicy(tb.Target, rules)
	return tb, nil
}

// StandardRuleSet builds the paper's experimental rule-set shape for
// explain-style tooling: depth-1 non-matching rules above the action
// rule, which either allows everything (default deny) or denies the
// flood signature (default allow).
func StandardRuleSet(depth int, floodAllowed bool) (*fw.RuleSet, error) {
	return standardRuleSet(depth, floodAllowed, 0)
}

// standardRuleSet builds the paper's experimental rule-set shape. With
// floodAllowed, the action rule at position depth allows everything
// (default deny); otherwise it denies the flood signature and the
// default allows the measurement traffic.
func standardRuleSet(depth int, floodAllowed bool, trailing int) (*fw.RuleSet, error) {
	rules := make([]fw.Rule, 0, depth+trailing)
	for i := 1; i < depth; i++ {
		rules = append(rules, fw.NonMatchingRule(i))
	}
	def := fw.Deny
	if floodAllowed {
		rules = append(rules, fw.AllowAllRule())
	} else {
		rules = append(rules, fw.Rule{
			Name:      "deny-flood",
			Action:    fw.Deny,
			Direction: fw.In,
			Proto:     packet.ProtoUDP,
			DstPorts:  fw.Port(FloodPort),
		})
		def = fw.Allow
	}
	for i := 0; i < trailing; i++ {
		rules = append(rules, fw.NonMatchingRule(100+i))
	}
	return fw.NewRuleSet(def, rules...)
}

// vpgRuleSet builds a rule set with depth-1 non-matching VPG pairs above
// the matching VPG pair for the host at local, as the paper constructed
// its VPG depth sweeps.
func vpgRuleSet(depth int, local packet.IP, trailing int) (*fw.RuleSet, error) {
	var rules []fw.Rule
	for i := 1; i < depth; i++ {
		pad := packet.Prefix{Addr: packet.IP{203, 0, 113, byte(i)}, Bits: 32}
		rules = append(rules, fw.VPGRulePair(fmt.Sprintf("pad-%d", i), packet.IP{203, 0, 113, 200}, pad)...)
	}
	rules = append(rules, fw.VPGRulePair(VPGGroupName, local, packet.MustPrefix("10.0.0.0/24"))...)
	for i := 0; i < trailing; i++ {
		rules = append(rules, fw.NonMatchingRule(100+i))
	}
	return fw.NewRuleSet(fw.Deny, rules...)
}

// startFlood arms the scenario's flood (if any) and lets it reach steady
// state before measurement.
func startFlood(tb *Testbed, s Scenario) (*measure.Flooder, error) {
	if s.FloodRatePPS <= 0 {
		return nil, nil
	}
	cfg := measure.FloodConfig{
		Kind:    s.FloodKind,
		RatePPS: s.FloodRatePPS,
		DstPort: FloodPort,
	}
	if s.FloodFragmented {
		cfg.Fragment = true
		cfg.PayloadBytes = 24 // splits into two fragments at a 16-byte MTU chunk
	}
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), cfg)
	f.Start()
	if err := tb.Kernel.RunFor(200 * time.Millisecond); err != nil {
		return nil, err
	}
	return f, nil
}

// RunBandwidth executes a bandwidth scenario: build the testbed, start
// the flood (if any), and measure available bandwidth between client and
// target with the iperf tool.
func RunBandwidth(s Scenario) (BandwidthPoint, error) {
	return runBandwidth(s, nil)
}

// RunBandwidthCaptured is RunBandwidth with a passive trace capture
// tapped on the client's wire for the whole run.
func RunBandwidthCaptured(s Scenario) (BandwidthPoint, *trace.Capture, error) {
	var cap *trace.Capture
	p, err := runBandwidth(s, func(tb *Testbed) {
		cap = trace.NewCapture(tb.Kernel, 0)
		cap.Tap(tb.Client.NIC().Endpoint())
	})
	return p, cap, err
}

func runBandwidth(s Scenario, tap func(*Testbed)) (BandwidthPoint, error) {
	tb, err := buildTestbed(s)
	if err != nil {
		return BandwidthPoint{}, err
	}
	if tap != nil {
		tap(tb)
	}
	flood, err := startFlood(tb, s)
	if err != nil {
		return BandwidthPoint{}, err
	}

	cfg := measure.IperfConfig{Duration: s.Duration}
	var res measure.IperfResult
	if s.UseUDP {
		res, err = measure.RunUDPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	} else {
		res, err = measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	}
	if err != nil {
		return BandwidthPoint{}, err
	}
	p := BandwidthPoint{
		Scenario:     s,
		Iperf:        res,
		TargetLocked: tb.Target.NIC().Locked(),
		TargetNIC:    tb.Target.NIC().Stats(),
		Attribution:  ruleAttribution(tb),
		SimSeconds:   tb.Kernel.Now().Seconds(),
		WallBusy:     tb.Kernel.WallBusy(),
	}
	if flood != nil {
		flood.Stop()
		p.FloodSent = flood.Sent()
	}
	return p, nil
}

// RunHTTP executes an HTTP load scenario against a web server on the
// target.
func RunHTTP(s Scenario) (HTTPPoint, error) {
	tb, err := buildTestbed(s)
	if err != nil {
		return HTTPPoint{}, err
	}
	if err := setupHTTPServer(tb); err != nil {
		return HTTPPoint{}, err
	}
	flood, err := startFlood(tb, s)
	if err != nil {
		return HTTPPoint{}, err
	}
	res, err := measure.RunHTTPLoad(tb.Kernel, tb.Client, tb.Target, measure.HTTPLoadConfig{
		Duration: s.Duration,
	})
	if err != nil {
		return HTTPPoint{}, err
	}
	if flood != nil {
		flood.Stop()
	}
	return HTTPPoint{
		Scenario:   s,
		Load:       res,
		SimSeconds: tb.Kernel.Now().Seconds(),
		WallBusy:   tb.Kernel.WallBusy(),
	}, nil
}
