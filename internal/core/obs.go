package core

import (
	"time"

	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/obs"
	"barbican/internal/obs/profile"
	"barbican/internal/obs/tracing"
	"barbican/internal/stack"
)

// Instrumentation bundles one run's metrics registry, flight
// recorder, and (optional) packet tracer. Construct it with
// Instrument; call Finish when the run's measurement window closes.
type Instrumentation struct {
	Registry *obs.Registry
	Recorder *obs.Recorder
	// Tracer is non-nil when the run was traced (see
	// RunBandwidthTraced); export it with WriteTraceArtifacts.
	Tracer *tracing.Tracer
	// Profiling is non-nil when the run was profiled (see
	// RunBandwidthObserved); export it with WriteProfileArtifacts.
	Profiling *Profiling

	// target is the system-under-test card, the authoritative source
	// of the per-reason drop totals embedded in trace exports.
	target *nic.NIC
}

// Finish takes a final sample at the current virtual time and stops the
// recorder.
func (in *Instrumentation) Finish() {
	if in == nil {
		return
	}
	in.Recorder.Sample()
	in.Recorder.Stop()
}

// WriteArtifacts writes the run's telemetry to dir as <base>.prom,
// <base>.csv, <base>.json, and <base>.snapshot.prom.
func (in *Instrumentation) WriteArtifacts(dir, base string) ([]string, error) {
	return obs.WriteRunArtifacts(dir, base, in.Registry, in.Recorder)
}

// Instrument attaches a registry and a started flight recorder to the
// testbed: kernel, switch, and every host's stack and card publish
// their counters. sampleEvery <= 0 uses obs.DefaultSampleEvery.
func Instrument(tb *Testbed, sampleEvery time.Duration) *Instrumentation {
	reg := obs.NewRegistry()
	obs.PublishKernel(reg, tb.Kernel)
	tb.Switch.PublishMetrics(reg)
	for _, hn := range []struct {
		h    *stack.Host
		name string
	}{
		{tb.Client, "client"},
		{tb.Target, "target"},
		{tb.Attacker, "attacker"},
		{tb.PolicyServer, "policy-server"},
	} {
		label := obs.L("host", hn.name)
		hn.h.PublishMetrics(reg, label)
		hn.h.NIC().PublishMetrics(reg, label)
		hn.h.NIC().Endpoint().PublishMetrics(reg, label)
		if rs := hn.h.NIC().RuleSet(); rs != nil {
			rs.PublishRuleMetrics(reg, label)
		} else if hf := hn.h.Firewall(); hf != nil && hf.RuleSet() != nil {
			hf.RuleSet().PublishRuleMetrics(reg, label)
		}
	}
	rec := obs.NewRecorder(tb.Kernel, reg, sampleEvery)
	rec.Start()
	return &Instrumentation{Registry: reg, Recorder: rec, target: tb.Target.NIC()}
}

// RunBandwidthInstrumented is RunBandwidth with a full telemetry
// harness: every component publishes into a registry, a flight recorder
// samples it every sampleEvery of virtual time, and the iperf sink's
// byte counter joins the registry so the recorded timeline carries an
// instantaneous-goodput series.
func RunBandwidthInstrumented(s Scenario, sampleEvery time.Duration) (BandwidthPoint, *Instrumentation, error) {
	return RunBandwidthTraced(s, sampleEvery, tracing.Options{})
}

// RunBandwidthTraced is RunBandwidthInstrumented with a packet
// tracer attached to the whole pipeline. topt.SampleEvery > 0 enables
// tracing at 1-in-N; zero options disable it (identical to
// RunBandwidthInstrumented).
func RunBandwidthTraced(s Scenario, sampleEvery time.Duration, topt tracing.Options) (BandwidthPoint, *Instrumentation, error) {
	return RunBandwidthObserved(s, ObserveOptions{SampleEvery: sampleEvery, Trace: topt})
}

// ObserveOptions selects which observability pillars ride along with
// a run: the flight-recorder tick, the packet tracer (enabled by
// Trace.SampleEvery > 0), and the dual-domain profiler (enabled by a
// non-nil Profile).
type ObserveOptions struct {
	SampleEvery time.Duration
	Trace       tracing.Options
	Profile     *profile.Options
}

// RunBandwidthObserved is RunBandwidth with the full observability
// harness: metrics and flight recorder always, packet tracer and
// profilers per opt. Profiled runs carry the merged cost-domain
// profile on the returned point (CostProfile) so experiment fan-outs
// can merge per-point profiles deterministically.
func RunBandwidthObserved(s Scenario, opt ObserveOptions) (BandwidthPoint, *Instrumentation, error) {
	tb, err := buildTestbed(s)
	if err != nil {
		return BandwidthPoint{}, nil, err
	}
	inst := Instrument(tb, opt.SampleEvery)
	if opt.Trace.SampleEvery > 0 {
		inst.Tracer = tb.AttachTracer(opt.Trace)
	}
	if opt.Profile != nil {
		inst.Profiling = tb.AttachProfiler(*opt.Profile)
	}
	flood, err := startFlood(tb, s)
	if err != nil {
		return BandwidthPoint{}, nil, err
	}
	if flood != nil {
		flood.PublishMetrics(inst.Registry, obs.L("host", "attacker"))
	}

	cfg := measure.IperfConfig{Duration: s.Duration, Metrics: inst.Registry}
	var res measure.IperfResult
	if s.UseUDP {
		res, err = measure.RunUDPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	} else {
		res, err = measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	}
	if err != nil {
		return BandwidthPoint{}, nil, err
	}
	p := BandwidthPoint{
		Scenario:     s,
		Iperf:        res,
		TargetLocked: tb.Target.NIC().Locked(),
		TargetNIC:    tb.Target.NIC().Stats(),
		Attribution:  ruleAttribution(tb),
		SimSeconds:   tb.Kernel.Now().Seconds(),
		WallBusy:     tb.Kernel.WallBusy(),
	}
	if flood != nil {
		flood.Stop()
		p.FloodSent = flood.Sent()
	}
	if inst.Profiling != nil {
		p.CostProfile = inst.Profiling.CostData()
	}
	inst.Finish()
	return p, inst, nil
}

// TimelineOptions shapes a RunFloodTimeline run.
type TimelineOptions struct {
	// SampleEvery is the flight-recorder tick; <= 0 uses the default.
	SampleEvery time.Duration
	// FloodStart is when the flood switches on, relative to measurement
	// start.
	FloodStart time.Duration
	// FloodStop is when the flood switches off; zero floods to the end
	// of the window.
	FloodStop time.Duration
	// Trace attaches a packet tracer when Trace.SampleEvery > 0.
	Trace tracing.Options
	// Profile attaches the dual-domain profiler when non-nil.
	Profile *profile.Options
}

// RunFloodTimeline measures bandwidth with the scenario's flood gated
// to a window inside the measurement, recording the whole run. The
// resulting goodput series shows the paper's Figure 3(a) finding as a
// time series — nominal bandwidth, collapse when the flood starts, and
// (for rates below the lockup regime) recovery when it stops — rather
// than a single endpoint scalar.
func RunFloodTimeline(s Scenario, opt TimelineOptions) (BandwidthPoint, *Instrumentation, error) {
	tb, err := buildTestbed(s)
	if err != nil {
		return BandwidthPoint{}, nil, err
	}
	inst := Instrument(tb, opt.SampleEvery)
	if opt.Trace.SampleEvery > 0 {
		inst.Tracer = tb.AttachTracer(opt.Trace)
	}
	if opt.Profile != nil {
		inst.Profiling = tb.AttachProfiler(*opt.Profile)
	}

	var flood *measure.Flooder
	if s.FloodRatePPS > 0 {
		cfg := measure.FloodConfig{
			Kind:    s.FloodKind,
			RatePPS: s.FloodRatePPS,
			DstPort: FloodPort,
		}
		if s.FloodFragmented {
			cfg.Fragment = true
			cfg.PayloadBytes = 24
		}
		flood = measure.NewFlooder(tb.Attacker, tb.Target.IP(), cfg)
		flood.PublishMetrics(inst.Registry, obs.L("host", "attacker"))
		tb.Kernel.After(opt.FloodStart, flood.Start)
		if opt.FloodStop > opt.FloodStart {
			tb.Kernel.After(opt.FloodStop, flood.Stop)
		}
	}

	cfg := measure.IperfConfig{Duration: s.Duration, Metrics: inst.Registry}
	var res measure.IperfResult
	if s.UseUDP {
		res, err = measure.RunUDPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	} else {
		res, err = measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, cfg)
	}
	if err != nil {
		return BandwidthPoint{}, nil, err
	}
	p := BandwidthPoint{
		Scenario:     s,
		Iperf:        res,
		TargetLocked: tb.Target.NIC().Locked(),
		TargetNIC:    tb.Target.NIC().Stats(),
		Attribution:  ruleAttribution(tb),
		SimSeconds:   tb.Kernel.Now().Seconds(),
		WallBusy:     tb.Kernel.WallBusy(),
	}
	if flood != nil {
		flood.Stop()
		p.FloodSent = flood.Sent()
	}
	if inst.Profiling != nil {
		p.CostProfile = inst.Profiling.CostData()
	}
	inst.Finish()
	return p, inst, nil
}
