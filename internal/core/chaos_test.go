package core_test

import (
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/faults"
	"barbican/internal/policy"
)

func TestChaosCleanChannelConverges(t *testing.T) {
	p, err := core.RunChaos(core.ChaosScenario{
		Device:       core.DeviceADF,
		FloodRatePPS: 2000,
		Duration:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Converged {
		t.Fatalf("clean channel did not converge: %+v", p)
	}
	if p.PushError != "" {
		t.Errorf("push error: %s", p.PushError)
	}
	if p.ConvergeTime <= 0 || p.ConvergeTime > time.Second {
		t.Errorf("converge time = %v", p.ConvergeTime)
	}
	if p.Server.Retries != 0 {
		t.Errorf("clean channel needed %d retries", p.Server.Retries)
	}
}

// TestChaosVerifySemantics: with VerifySemantics on, convergence is
// proven rather than assumed — the installed rule set is shown
// verdict-identical to the pushed policy over the entire packet space,
// and the card's compiled classifier equal to the linear walk on it.
func TestChaosVerifySemantics(t *testing.T) {
	p, err := core.RunChaos(core.ChaosScenario{
		Device:          core.DeviceADF,
		FloodRatePPS:    2000,
		Duration:        2 * time.Second,
		VerifySemantics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Converged {
		t.Fatalf("clean channel did not converge: %+v", p)
	}
	if !p.SemanticsVerified {
		t.Fatalf("semantic convergence proof failed: %s", p.SemanticsError)
	}
	if p.SemanticsError != "" {
		t.Errorf("verified install carries an error: %s", p.SemanticsError)
	}
}

// TestChaosConvergesUnderLoss: ≥10% management-channel frame loss. TCP
// retransmission plus the server's per-attempt timeout and retry/backoff
// must still land the policy.
func TestChaosConvergesUnderLoss(t *testing.T) {
	p, err := core.RunChaos(core.ChaosScenario{
		Device:       core.DeviceADF,
		FloodRatePPS: 2000,
		MgmtFaults:   faults.Plan{Loss: 0.25},
		Duration:     3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Converged {
		t.Fatalf("push did not converge through 25%% loss: %+v", p)
	}
	if p.PushError != "" {
		t.Errorf("push error: %s", p.PushError)
	}
}

// TestChaosPartitionNeedsRetries is the PR's core demonstration: a
// partition window swallowing the push. The single-shot legacy behavior
// (MaxAttempts: 1) never converges; the retry engine converges once the
// window lifts.
func TestChaosPartitionNeedsRetries(t *testing.T) {
	base := core.ChaosScenario{
		Device:       core.DeviceADF,
		FloodRatePPS: 2000,
		MgmtFaults:   faults.Plan{Down: []faults.Window{{From: 900 * time.Millisecond, To: 2500 * time.Millisecond}}},
		PushAt:       time.Second,
		Duration:     5 * time.Second,
	}

	legacy := base
	legacy.Push = policy.PushOptions{MaxAttempts: 1}
	lp, err := core.RunChaos(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Converged {
		t.Fatalf("single-shot push converged through a partition: %+v", lp)
	}
	if lp.PushError == "" {
		t.Error("single-shot push reported no terminal error")
	}

	rp, err := core.RunChaos(base)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Converged {
		t.Fatalf("retrying push did not converge after the partition lifted: %+v", rp)
	}
	if rp.Server.Retries == 0 {
		t.Error("retrying push converged without retries — partition did not bite")
	}
	if rp.ConvergedAt < 2500*time.Millisecond {
		t.Errorf("converged at %v, inside the partition window", rp.ConvergedAt)
	}
}

// TestChaosDataPlaneFaultsViaScenario exercises the Scenario.Faults
// hook floodsim uses: loss on the target's access link degrades iperf.
func TestChaosDataPlaneFaultsViaScenario(t *testing.T) {
	clean, err := core.RunBandwidth(core.Scenario{Device: core.DeviceADF, Depth: 1, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := core.RunBandwidth(core.Scenario{
		Device: core.DeviceADF, Depth: 1, Duration: time.Second,
		Faults: &faults.Plan{Loss: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Mbps() >= clean.Mbps() {
		t.Errorf("5%% loss did not reduce bandwidth: clean %.1f, lossy %.1f", clean.Mbps(), lossy.Mbps())
	}
	if lossy.Mbps() <= 0 {
		t.Errorf("TCP made no progress at all under 5%% loss: %.1f", lossy.Mbps())
	}
}
