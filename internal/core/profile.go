package core

import (
	"os"
	"path/filepath"

	"barbican/internal/obs"
	"barbican/internal/obs/profile"
)

// Profiling bundles one run's attached profilers: a cost-domain
// CardProfiler per testbed NIC (exact per-packet attribution) and one
// wall-domain KernelProfiler sampling the event loop.
type Profiling struct {
	Cards  []*profile.CardProfiler // testbed host order: client, target, attacker, policy-server
	Kernel *profile.KernelProfiler
}

// AttachProfiler creates both profiler domains and threads them
// through the testbed: every host's NIC gets a cost profiler and the
// kernel gets the step sampler. Returns the bundle for export.
func (tb *Testbed) AttachProfiler(opt profile.Options) *Profiling {
	p := &Profiling{Kernel: profile.NewKernelProfiler(opt.KernelSampleEvery)}
	names := []string{"client", "target", "attacker", "policy-server"}
	for i, h := range tb.hosts() {
		cp := profile.NewCardProfiler(names[i], "", 0)
		h.NIC().SetProfiler(cp)
		p.Cards = append(p.Cards, cp)
	}
	tb.Kernel.SetStepProfiler(p.Kernel)
	return p
}

// CostData merges every card's attributed samples into one
// cost-domain profile, in host order. The result is exact and
// deterministic: identical scenarios produce identical profiles.
func (p *Profiling) CostData() *profile.Data {
	d := profile.NewData(profile.CostSampleTypes, "cost")
	d.Comments = append(d.Comments, "cost-domain card profile: exact per-packet attribution in virtual cost units")
	for _, cp := range p.Cards {
		cp.AppendCostSamples(d)
	}
	return d
}

// KernelData exports the wall-domain kernel profile. Event counts are
// deterministic; wall-nanosecond values are measured on the host.
func (p *Profiling) KernelData() *profile.Data { return p.Kernel.Data() }

// WriteProfileArtifacts writes the run's profiles to dir as
// <base>.cost.{pprof,folded} and <base>.kernel.{pprof,folded} —
// gzipped pprof profile.proto plus folded stacks for
// flamegraph.pl/speedscope. Returns the written paths; no-op when the
// run was not profiled.
func (in *Instrumentation) WriteProfileArtifacts(dir, base string) ([]string, error) {
	if in == nil || in.Profiling == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	base = obs.SanitizeName(base)
	var paths []string
	for _, out := range []struct {
		domain string
		data   *profile.Data
	}{
		{"cost", in.Profiling.CostData()},
		{"kernel", in.Profiling.KernelData()},
	} {
		pprofPath := filepath.Join(dir, base+"."+out.domain+".pprof")
		if err := out.data.WritePprofFile(pprofPath); err != nil {
			return nil, err
		}
		foldedPath := filepath.Join(dir, base+"."+out.domain+".folded")
		if err := out.data.WriteFoldedFile(foldedPath); err != nil {
			return nil, err
		}
		paths = append(paths, pprofPath, foldedPath)
	}
	return paths, nil
}
