package core

import (
	"testing"
	"time"

	"barbican/internal/measure"
)

// Shape invariants from the paper. Absolute numbers are the simulator's,
// but orderings, knees, and ratios must match the published findings.

func bw(t *testing.T, s Scenario) BandwidthPoint {
	t.Helper()
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	p, err := RunBandwidth(s)
	if err != nil {
		t.Fatalf("RunBandwidth(%+v): %v", s, err)
	}
	return p
}

func TestStandardNICFullBandwidth(t *testing.T) {
	p := bw(t, Scenario{Device: DeviceStandard})
	if p.Mbps() < 90 {
		t.Errorf("standard NIC bandwidth = %.1f Mbps, want >90", p.Mbps())
	}
}

func TestEFWFullBandwidthAtShallowDepth(t *testing.T) {
	for _, depth := range []int{1, 8, 16} {
		p := bw(t, Scenario{Device: DeviceEFW, Depth: depth})
		if p.Mbps() < 90 {
			t.Errorf("EFW depth %d = %.1f Mbps, want >90 (no significant loss under 20 rules)", depth, p.Mbps())
		}
	}
}

func TestEFWLosesHalfBandwidthAt64Rules(t *testing.T) {
	p := bw(t, Scenario{Device: DeviceEFW, Depth: 64})
	if p.Mbps() < 40 || p.Mbps() > 60 {
		t.Errorf("EFW depth 64 = %.1f Mbps, want ≈50 (paper: half of full speed)", p.Mbps())
	}
}

func TestADFSlowerThanEFWAt64Rules(t *testing.T) {
	efw := bw(t, Scenario{Device: DeviceEFW, Depth: 64})
	adf := bw(t, Scenario{Device: DeviceADF, Depth: 64})
	if adf.Mbps() >= efw.Mbps() {
		t.Errorf("ADF (%.1f) not slower than EFW (%.1f) at 64 rules", adf.Mbps(), efw.Mbps())
	}
	if adf.Mbps() < 25 || adf.Mbps() > 40 {
		t.Errorf("ADF depth 64 = %.1f Mbps, want ≈33", adf.Mbps())
	}
}

func TestIPTablesNoLossAt64Rules(t *testing.T) {
	p := bw(t, Scenario{Device: DeviceIPTables, Depth: 64})
	if p.Mbps() < 90 {
		t.Errorf("iptables depth 64 = %.1f Mbps, want >90 (paper/Hoffman: no loss)", p.Mbps())
	}
}

func TestBandwidthMonotoneInDepth(t *testing.T) {
	prev := 1e9
	for _, depth := range []int{1, 16, 32, 64} {
		p := bw(t, Scenario{Device: DeviceADF, Depth: depth})
		if p.Mbps() > prev*1.05 {
			t.Errorf("ADF bandwidth increased with depth at %d: %.1f > %.1f", depth, p.Mbps(), prev)
		}
		prev = p.Mbps()
	}
}

func TestVPGCostsBandwidth(t *testing.T) {
	plain := bw(t, Scenario{Device: DeviceADF, Depth: 2})
	one := bw(t, Scenario{Device: DeviceADFVPG, Depth: 1})
	if one.Mbps() >= plain.Mbps()*0.8 {
		t.Errorf("one VPG (%.1f) should cost well below a shallow plain rule-set (%.1f)", one.Mbps(), plain.Mbps())
	}
	// Non-matching VPGs above the action pair are nearly free (the ADF
	// does not decrypt until the matching rule).
	four := bw(t, Scenario{Device: DeviceADFVPG, Depth: 4})
	if four.Mbps() < one.Mbps()*0.80 {
		t.Errorf("4 VPGs (%.1f) should cost little more than 1 VPG (%.1f)", four.Mbps(), one.Mbps())
	}
}

func TestFloodKillsEFWButNotStandardOrIPTables(t *testing.T) {
	flood := func(dev Device, depth int) BandwidthPoint {
		return bw(t, Scenario{Device: dev, Depth: depth, FloodRatePPS: 12_500, FloodAllowed: true})
	}
	if p := flood(DeviceEFW, 1); p.Mbps() > DoSThresholdMbps {
		t.Errorf("EFW under 12.5k pps flood = %.1f Mbps, want ≈0", p.Mbps())
	}
	if p := flood(DeviceADF, 1); p.Mbps() > 2*DoSThresholdMbps {
		t.Errorf("ADF under 12.5k pps flood = %.1f Mbps, want ≈0", p.Mbps())
	}
	if p := flood(DeviceStandard, 0); p.Mbps() < 70 {
		t.Errorf("standard NIC under 12.5k pps flood = %.1f Mbps, want ≥70 (paper: 77)", p.Mbps())
	}
	if p := flood(DeviceIPTables, 1); p.Mbps() < 70 {
		t.Errorf("iptables under 12.5k pps flood = %.1f Mbps, want ≥70 (paper: 77)", p.Mbps())
	}
}

func TestFloodBandwidthMonotoneInRate(t *testing.T) {
	prev := 1e9
	for _, rate := range []float64{0, 6000, 10000, 12500} {
		p := bw(t, Scenario{Device: DeviceEFW, Depth: 1, FloodRatePPS: rate, FloodAllowed: true})
		if p.Mbps() > prev*1.10 {
			t.Errorf("EFW bandwidth increased with flood rate at %.0f pps: %.1f > %.1f", rate, p.Mbps(), prev)
		}
		prev = p.Mbps()
	}
}

func TestMinFloodRateDeclinesWithDepth(t *testing.T) {
	shallow, err := MinFloodRate(Scenario{Device: DeviceEFW, Depth: 1, FloodAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := MinFloodRate(Scenario{Device: DeviceEFW, Depth: 64, FloodAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !shallow.Found || !deep.Found {
		t.Fatalf("search did not find DoS rates: %+v / %+v", shallow, deep)
	}
	if deep.RatePPS >= shallow.RatePPS {
		t.Errorf("min flood rate did not decline with depth: %0.f vs %0.f", deep.RatePPS, shallow.RatePPS)
	}
	// Paper anchors: ≈12,500 at 1 rule, ≈4,500 at 64 rules.
	if shallow.RatePPS < 9_000 || shallow.RatePPS > 16_000 {
		t.Errorf("1-rule min flood = %.0f pps, want ≈12,500", shallow.RatePPS)
	}
	if deep.RatePPS < 2_500 || deep.RatePPS > 6_500 {
		t.Errorf("64-rule min flood = %.0f pps, want ≈4,500", deep.RatePPS)
	}
}

func TestDenyingFloodRoughlyDoublesMinRate(t *testing.T) {
	allow, err := MinFloodRate(Scenario{Device: DeviceADF, Depth: 64, FloodAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	deny, err := MinFloodRate(Scenario{Device: DeviceADF, Depth: 64, FloodAllowed: false})
	if err != nil {
		t.Fatal(err)
	}
	ratio := deny.RatePPS / allow.RatePPS
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("deny/allow min flood ratio = %.2f, want ≈2 (suppressed responses halve card load)", ratio)
	}
}

func TestEFWDenyAllLocksUpJustAbove1000PPS(t *testing.T) {
	r, err := MinFloodRate(Scenario{Device: DeviceEFW, Depth: 64, FloodAllowed: false})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || !r.LockedUp {
		t.Fatalf("EFW deny case did not lock up: %+v", r)
	}
	if r.RatePPS < 900 || r.RatePPS > 1600 {
		t.Errorf("EFW lockup rate = %.0f pps, want just above 1,000 (paper: >1000 pps wedges the card)", r.RatePPS)
	}
}

func TestHTTPPerformanceShape(t *testing.T) {
	run := func(dev Device, depth int) HTTPPoint {
		p, err := RunHTTP(Scenario{Device: dev, Depth: depth, Duration: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if p.Load.Errors > 0 {
			t.Fatalf("%v depth %d: %d fetch errors", dev, depth, p.Load.Errors)
		}
		return p
	}
	std := run(DeviceStandard, 0)
	adf64 := run(DeviceADF, 64)
	vpg1 := run(DeviceADFVPG, 1)

	drop := 1 - adf64.Load.FetchesPerSec/std.Load.FetchesPerSec
	if drop < 0.25 || drop > 0.60 {
		t.Errorf("ADF-64 throughput drop = %.0f%%, want ≈41%% (paper Table 1)", 100*drop)
	}
	if adf64.Load.ConnectMs.Mean() <= std.Load.ConnectMs.Mean() {
		t.Error("ADF-64 connect latency not above standard NIC")
	}
	if adf64.Load.FirstResponseMs.Mean() <= std.Load.FirstResponseMs.Mean() {
		t.Error("ADF-64 first-response latency not above standard NIC")
	}
	// Latency stays unexcessive (paper: unnoticeable for Internet use).
	if adf64.Load.ConnectMs.Mean() > 10 {
		t.Errorf("ADF-64 connect latency = %.2f ms, want modest (<10ms)", adf64.Load.ConnectMs.Mean())
	}
	if vpg1.Load.FetchesPerSec >= adf64.Load.FetchesPerSec &&
		vpg1.Load.FetchesPerSec >= std.Load.FetchesPerSec {
		t.Error("VPG HTTP throughput should drop vs standard NIC")
	}
	// Non-matching VPGs above the pair barely matter.
	vpg4 := run(DeviceADFVPG, 4)
	if vpg4.Load.FetchesPerSec < vpg1.Load.FetchesPerSec*0.85 {
		t.Errorf("4 VPGs (%.1f f/s) should be close to 1 VPG (%.1f f/s)",
			vpg4.Load.FetchesPerSec, vpg1.Load.FetchesPerSec)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := bw(t, Scenario{Device: DeviceEFW, Depth: 32, FloodRatePPS: 6000, FloodAllowed: true, Seed: 7})
	b := bw(t, Scenario{Device: DeviceEFW, Depth: 32, FloodRatePPS: 6000, FloodAllowed: true, Seed: 7})
	if a.Iperf.BytesReceived != b.Iperf.BytesReceived || a.FloodSent != b.FloodSent {
		t.Errorf("same seed produced different results: %+v vs %+v", a.Iperf, b.Iperf)
	}
}

func TestUDPScenario(t *testing.T) {
	p := bw(t, Scenario{Device: DeviceStandard, UseUDP: true})
	if p.Iperf.Protocol != "udp" {
		t.Fatalf("protocol = %q", p.Iperf.Protocol)
	}
	if p.Mbps() < 90 {
		t.Errorf("UDP available bandwidth = %.1f, want >90", p.Mbps())
	}
	if p.Iperf.LossFraction > 0.05 {
		t.Errorf("UDP loss on clean path = %.2f", p.Iperf.LossFraction)
	}
}

func TestTestbedRejectsDuplicateHosts(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("dup", TargetIP, DeviceStandard, true); err == nil {
		t.Error("duplicate IP accepted")
	}
	if _, err := tb.AddHost("weird", measureIP(), Device(99), true); err == nil {
		t.Error("unknown device accepted")
	}
}

func measureIP() (ip [4]byte) { return [4]byte{10, 0, 0, 200} }

func TestTestbedDeviceWiring(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{TargetDevice: DeviceIPTables, ClientDevice: DeviceEFW})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Target.Firewall() == nil {
		t.Error("iptables target has no host firewall")
	}
	if tb.Client.Firewall() != nil {
		t.Error("EFW client has a host firewall")
	}
	if tb.DeviceOf(tb.Client) != DeviceEFW {
		t.Errorf("DeviceOf(client) = %v", tb.DeviceOf(tb.Client))
	}
	// InstallPolicy routes to the right enforcement point.
	rs, err := standardRuleSet(4, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.InstallPolicy(tb.Target, rs)
	if tb.Target.Firewall().RuleSet() != rs {
		t.Error("policy not installed into host firewall for iptables device")
	}
	if tb.Target.NIC().RuleSet() != nil {
		t.Error("policy leaked onto the standard NIC for iptables device")
	}
	tb.InstallPolicy(tb.Client, rs)
	if tb.Client.NIC().RuleSet() != rs {
		t.Error("policy not installed on EFW card")
	}
}

func TestRuleSetBuilders(t *testing.T) {
	rs, err := standardRuleSet(8, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 8 {
		t.Errorf("allowed rule set len = %d, want 8", rs.Len())
	}
	rs, err = standardRuleSet(8, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 13 {
		t.Errorf("deny rule set with trailing len = %d, want 13", rs.Len())
	}
	vrs, err := vpgRuleSet(3, TargetIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vrs.Len() != 6 { // 3 VPG pairs
		t.Errorf("vpg rule set len = %d, want 6", vrs.Len())
	}
}

func TestSuppressFloodResponsesAblation(t *testing.T) {
	// ABL1: with victim responses suppressed, an allowed flood loads the
	// card half as much, so the same rate leaves more bandwidth.
	withResp := bw(t, Scenario{Device: DeviceEFW, Depth: 1, FloodRatePPS: 9_000, FloodAllowed: true})
	noResp := bw(t, Scenario{Device: DeviceEFW, Depth: 1, FloodRatePPS: 9_000, FloodAllowed: true,
		SuppressFloodResponses: true})
	if noResp.Mbps() <= withResp.Mbps() {
		t.Errorf("suppressing responses did not help: %.1f vs %.1f Mbps", noResp.Mbps(), withResp.Mbps())
	}
}

func TestTrailingRulesAreFreeAblation(t *testing.T) {
	// ABL3: rules after the action rule must not change bandwidth.
	base := bw(t, Scenario{Device: DeviceEFW, Depth: 32})
	trail := bw(t, Scenario{Device: DeviceEFW, Depth: 32, TrailingRules: 32})
	diff := base.Mbps() - trail.Mbps()
	if diff < 0 {
		diff = -diff
	}
	if diff > base.Mbps()*0.05 {
		t.Errorf("trailing rules changed bandwidth: %.1f vs %.1f Mbps", base.Mbps(), trail.Mbps())
	}
}

func TestEagerVPGDecryptAblation(t *testing.T) {
	// ABL2: eagerly decrypting makes padding VPGs expensive; the lazy
	// ADF keeps them nearly free.
	lazy := bw(t, Scenario{Device: DeviceADFVPG, Depth: 4})
	eager := bw(t, Scenario{Device: DeviceADFVPG, Depth: 4, EagerVPGDecrypt: true})
	if eager.Mbps() > lazy.Mbps() {
		t.Errorf("eager decrypt faster than lazy: %.1f vs %.1f Mbps", eager.Mbps(), lazy.Mbps())
	}
}

func TestNextGenCardSurvivesFloods(t *testing.T) {
	// EXT1: the paper's hoped-for device tolerates what kills the EFW.
	clean := bw(t, Scenario{Device: DeviceNextGen, Depth: 64})
	if clean.Mbps() < 90 {
		t.Errorf("NextGen at 64 rules = %.1f Mbps, want full bandwidth", clean.Mbps())
	}
	flood := bw(t, Scenario{Device: DeviceNextGen, Depth: 64, FloodRatePPS: 12_500, FloodAllowed: true})
	if flood.Mbps() < 70 {
		t.Errorf("NextGen under 12.5k pps flood = %.1f Mbps, want ≥70", flood.Mbps())
	}
	r, err := MinFloodRate(Scenario{Device: DeviceNextGen, Depth: 64, FloodAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Found {
		t.Errorf("NextGen suffered DoS at %.0f pps; want none within search bounds", r.RatePPS)
	}
}

func TestFloodKindTCPSYN(t *testing.T) {
	p := bw(t, Scenario{
		Device: DeviceEFW, Depth: 1,
		FloodRatePPS: 12_500, FloodAllowed: true,
		FloodKind: measure.FloodTCPSYN,
	})
	// SYN floods elicit RSTs instead of ICMP; the card still saturates.
	if p.Mbps() > 5 {
		t.Errorf("EFW under 12.5k SYN flood = %.1f Mbps, want ≈0", p.Mbps())
	}
	if p.TargetNIC.RxFrames == 0 {
		t.Error("no flood frames observed")
	}
}

func TestFragmentEvasionShape(t *testing.T) {
	// EXT3: fragmenting a denied flood claws back (most of) the factor
	// of two that denying it bought.
	deny, err := MinFloodRate(Scenario{Device: DeviceADF, Depth: 64, FloodAllowed: false})
	if err != nil {
		t.Fatal(err)
	}
	frag, err := MinFloodRate(Scenario{Device: DeviceADF, Depth: 64, FloodAllowed: false, FloodFragmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if !deny.Found || !frag.Found {
		t.Fatalf("searches failed: %+v / %+v", deny, frag)
	}
	if frag.RatePPS >= deny.RatePPS*0.75 {
		t.Errorf("fragmented flood min rate %.0f not well below denied rate %.0f", frag.RatePPS, deny.RatePPS)
	}
}

func TestTestbedWithARP(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{UseARP: true, TargetDevice: DeviceEFW})
	if err != nil {
		t.Fatal(err)
	}
	res, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 85 {
		t.Errorf("bandwidth with ARP resolution = %.1f Mbps", res.Mbps)
	}
	if tb.Client.ARPStats().RequestsSent == 0 {
		t.Error("no ARP requests despite UseARP")
	}
}
