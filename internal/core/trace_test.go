package core

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"barbican/internal/obs/tracing"
)

// floodScenario is a short Fig 3a-style collapse point: ADF at full
// depth under an allowed flood hot enough to saturate the card.
func floodScenario() Scenario {
	return Scenario{
		Device:       DeviceADF,
		Depth:        64,
		FloodRatePPS: 12_500,
		FloodAllowed: true,
		Duration:     500 * time.Millisecond,
	}
}

// TestTracedFloodDropCountersSumToTotalDrops is the PR's acceptance
// check: a traced flood run exports Perfetto trace_event JSON whose
// embedded drop-reason counters sum exactly to the target card's
// total dropped packets.
func TestTracedFloodDropCountersSumToTotalDrops(t *testing.T) {
	p, inst, err := RunBandwidthTraced(floodScenario(), 0, tracing.Options{SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Tracer == nil {
		t.Fatal("tracer not attached")
	}
	if inst.Tracer.Sampled() == 0 {
		t.Fatal("no packets sampled")
	}

	var buf bytes.Buffer
	opt := tracing.ExportOptions{Drops: dropCounters(inst), Counters: dropCounterTracks(inst)}
	if err := inst.Tracer.WritePerfetto(&buf, opt); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var sum uint64
	for k, v := range doc.OtherData {
		if !strings.HasPrefix(k, "drop_") {
			continue
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("counter %s=%q not a number", k, v)
		}
		sum += n
	}
	total, err := strconv.ParseUint(doc.OtherData["drops_total"], 10, 64)
	if err != nil {
		t.Fatalf("drops_total %q not a number", doc.OtherData["drops_total"])
	}
	if sum != total {
		t.Fatalf("per-reason counters sum to %d, drops_total says %d", sum, total)
	}
	if nicTotal := inst.target.TotalDrops(); total != nicTotal {
		t.Fatalf("exported drops_total %d != target NIC total drops %d", total, nicTotal)
	}
	if total == 0 {
		t.Fatal("flood run recorded zero drops; scenario not saturating")
	}
	// A 12.5 kpps flood against a 64-rule ADF is the paper's
	// CPU-exhaustion regime: that reason must dominate.
	drops := dropCounters(inst)
	if drops["cpu-exhausted"] == 0 {
		t.Fatalf("expected cpu-exhausted drops in collapse regime, got %v", drops)
	}
	_ = p
}

// TestTracingDoesNotPerturbSimulation: attaching the tracer must not
// change any simulated outcome — same bandwidth, same NIC counters.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	s := floodScenario()
	plain, err := RunBandwidth(s)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := RunBandwidthTraced(s, 0, tracing.Options{SampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Mbps() != traced.Mbps() {
		t.Fatalf("tracing changed bandwidth: %v vs %v Mbps", plain.Mbps(), traced.Mbps())
	}
	if plain.TargetNIC != traced.TargetNIC {
		t.Fatalf("tracing changed NIC stats:\nplain:  %+v\ntraced: %+v", plain.TargetNIC, traced.TargetNIC)
	}
}

// TestRuleAttributionPopulated: every filtered run ships its own
// per-rule breakdown with hits on the action rule and monotonically
// increasing predicted walk latency.
func TestRuleAttributionPopulated(t *testing.T) {
	p, err := RunBandwidth(Scenario{
		Device:   DeviceEFW,
		Depth:    64,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := p.Attribution
	if a == nil {
		t.Fatal("no attribution on a filtered run")
	}
	if len(a.Rules) != 64 {
		t.Fatalf("attribution has %d rules, want 64", len(a.Rules))
	}
	if a.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
	var hits uint64
	for i, r := range a.Rules {
		hits += r.Hits
		if r.Index != i+1 {
			t.Fatalf("rule %d has index %d", i, r.Index)
		}
		if i > 0 && r.Latency <= a.Rules[i-1].Latency {
			t.Fatalf("predicted latency not increasing at rule %d", r.Index)
		}
	}
	if hits+a.DefaultHits != a.Evals {
		t.Fatalf("hits %d + default %d != evals %d", hits, a.DefaultHits, a.Evals)
	}
	if hits == 0 {
		t.Fatal("no rule hits recorded for iperf traffic")
	}
}
