package core

import (
	"time"

	"barbican/internal/faults"
	"barbican/internal/fw"
	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/obs"
	"barbican/internal/policy"
	"barbican/internal/telemetry"
)

// BenignBurstPort carries the false-positive experiment's bursty but
// legitimate traffic (UDP discard). The detection scenarios bind it on
// the target so bursts are a real admitted workload, not an ICMP
// error storm.
const BenignBurstPort = 9

// DetectionScenario measures whether — and how fast — the fleet
// *knows* it is under attack. The target runs a telemetry agent
// reporting card health to a collector on the policy server over the
// same management network the policy pushes use; the collector's
// flood-onset detector raises an alert, optionally triggering a
// responsive blocklist push. The measurements are time-to-detect
// (flood start → Alerting) and window-of-exposure (flood packets the
// target admitted before detection / before the mitigation converged).
type DetectionScenario struct {
	// Device is the target's firewall card.
	Device Device
	// Depth installs the paper's standard rule-set shape on the target
	// (0 leaves it unprotected, like the chaos scenarios).
	Depth int
	// FloodAllowed selects the standard rule set's action rule when
	// Depth > 0: true admits the flood (exposure is then non-zero and
	// detection must come from overload drops and backlog), false
	// denies it at the card (detection from the deny counters).
	FloodAllowed bool
	// FloodRatePPS, when positive, floods the target from FloodStart
	// until the measurement window closes.
	FloodRatePPS float64
	// FloodStart is when the flood begins (virtual time); zero means
	// 1 s — late enough for the detector to learn a quiet baseline.
	FloodStart time.Duration
	// Duration is the measurement window; zero means 5 s.
	Duration time.Duration
	// Iperf, when true, runs the chaos-style TCP bandwidth measurement
	// through the window. Off by default: at depth 64 the iperf stream
	// alone overloads the filtering cards (the paper's fig2 cliff), and
	// the detector — correctly — alerts on it before the flood even
	// starts, which makes a poor detection-latency baseline. Quiet
	// scenarios measure the detector; iperf scenarios measure how it
	// behaves under production load.
	Iperf bool
	// Seed seeds the simulation; zero means 1. FaultSeed seeds the
	// fault injectors; zero means Seed.
	Seed      int64
	FaultSeed int64
	// MgmtFaults is applied to both directions of the policy server's
	// access link — telemetry reports and policy pushes share it, so a
	// lossy plan delays detection AND mitigation.
	MgmtFaults faults.Plan
	// ReportEvery is the telemetry cadence; zero means
	// telemetry.DefaultReportInterval.
	ReportEvery time.Duration
	// Detector tunes the collector's flood-onset detector.
	Detector telemetry.DetectorConfig
	// SilenceAfter arms the collector's staleness watchdog; zero means
	// 3.5 report intervals (a mute device is a hot signal — the EFW
	// lockup silences its own telemetry), negative disables it.
	SilenceAfter time.Duration
	// Respond, when true, pushes ChaosPolicy to the target the moment
	// its detector alerts, closing the detect→mitigate loop.
	Respond bool
	// Push tunes the responsive push's retry engine.
	Push policy.PushOptions
	// BenignBurstPPS, when positive, drives on/off UDP bursts from the
	// client to the target's discard port — legitimate traffic the
	// detector must not page on. BenignBurstOn/Off set the duty cycle
	// (zero means 500 ms each).
	BenignBurstPPS float64
	BenignBurstOn  time.Duration
	BenignBurstOff time.Duration
	// Metrics, when non-nil, receives the scenario's full metric set
	// (collector, agents, target card, policy plane) in deterministic
	// registration order.
	Metrics *obs.Registry
}

// DetectionPoint is the outcome of a detection scenario.
type DetectionPoint struct {
	Scenario DetectionScenario

	// Detected reports whether the target's detector reached Alerting;
	// AlertAt is when (virtual time), TimeToDetect measured from
	// FloodStart.
	Detected     bool
	AlertAt      time.Duration
	TimeToDetect time.Duration

	// Converged reports the responsive push landing (Respond only);
	// ResponseTime is FloodStart → ConvergedAt.
	Converged    bool
	ConvergedAt  time.Duration
	ResponseTime time.Duration
	PushError    string

	// The window of exposure: flood datagrams the target's stack
	// delivered before the alert, before the mitigation converged, and
	// over the whole run.
	ExposedAtDetect   uint64
	ExposedAtConverge uint64
	ExposedTotal      uint64

	// FalseAlerts counts Alerting entries that are not the flood
	// detection itself — client-side alerts, and target alerts before
	// the flood began (or with no flood configured at all).
	FalseAlerts int
	// Timeline is the target detector's full transition record;
	// FinalState its state at scenario end. ClientTimeline is the
	// client device's record (any Alerting entry there is a false
	// positive by construction).
	Timeline       []telemetry.Transition
	ClientTimeline []telemetry.Transition
	FinalState     telemetry.AlertState

	// Telemetry-plane accounting: collector totals, the target
	// device's sequence gaps (reports the management network lost),
	// and what the agents handed to their stacks.
	Reports        uint64
	Corrupt        uint64
	Gaps           uint64
	AgentReports   uint64
	AgentSendFails uint64

	// Fleet is the collector's health model at scenario end, one row
	// per tracked device in tracking order.
	Fleet []DeviceSummary

	Iperf        measure.IperfResult
	FloodSent    uint64
	TargetLocked bool
	TargetNIC    nic.Stats
	SimSeconds   float64
	WallBusy     time.Duration
}

// DeviceSummary is one row of the collector's fleet-health model.
type DeviceSummary struct {
	Device   string
	State    telemetry.AlertState
	Reports  uint64
	Gaps     uint64
	Alerts   int
	LastSeen time.Duration
}

// Mbps returns the measured available bandwidth.
func (p DetectionPoint) Mbps() float64 { return p.Iperf.Mbps }

// RunDetection executes a detection scenario: quiet baseline until
// FloodStart, flood through the rest of the iperf window, telemetry
// flowing throughout, alert (and optionally a responsive push) when the
// collector's detector fires, then the kernel runs on until the push
// settles.
func RunDetection(s DetectionScenario) (DetectionPoint, error) {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = s.Seed
	}
	if s.FloodStart == 0 {
		s.FloodStart = time.Second
	}
	if s.Duration == 0 {
		s.Duration = 5 * time.Second
	}
	if s.ReportEvery == 0 {
		s.ReportEvery = telemetry.DefaultReportInterval
	}
	if s.SilenceAfter == 0 {
		s.SilenceAfter = 7 * s.ReportEvery / 2
	} else if s.SilenceAfter < 0 {
		s.SilenceAfter = 0
	}
	if s.BenignBurstOn == 0 {
		s.BenignBurstOn = 500 * time.Millisecond
	}
	if s.BenignBurstOff == 0 {
		s.BenignBurstOff = 500 * time.Millisecond
	}

	tb, err := NewTestbed(TestbedOptions{TargetDevice: s.Device, Seed: s.Seed})
	if err != nil {
		return DetectionPoint{}, err
	}
	if s.Depth > 0 {
		rules, err := standardRuleSet(s.Depth, s.FloodAllowed, 0)
		if err != nil {
			return DetectionPoint{}, err
		}
		tb.InstallPolicy(tb.Target, rules)
	}

	psk := policy.DeriveKey("detect")
	srv := policy.NewServer(tb.PolicyServer, psk)
	polAgent, err := policy.NewAgent(tb.Target, tb.PolicyServer.IP(), psk)
	if err != nil {
		return DetectionPoint{}, err
	}
	faults.Attach(tb.PolicyServer.NIC().Endpoint(), s.MgmtFaults, s.FaultSeed)

	p := DetectionPoint{Scenario: s}

	// Exposure is counted at the flood sink: datagrams that cleared the
	// card AND the stack are the packets an attacker actually landed.
	sink, err := tb.Target.BindUDP(FloodPort)
	if err != nil {
		return DetectionPoint{}, err
	}
	var exposureBase uint64
	exposed := func() uint64 {
		n, _ := sink.Received()
		return n - exposureBase
	}
	tb.Kernel.After(s.FloodStart, func() {
		exposureBase, _ = sink.Received()
	})

	settled := s.Respond // nothing to settle unless a push happens
	var pushErr error
	collector, err := telemetry.NewCollector(tb.PolicyServer, telemetry.CollectorConfig{
		Detector:     s.Detector,
		SilenceAfter: s.SilenceAfter,
		OnAlert: func(device string, at time.Duration) {
			// Only an alert at or after flood start is the detection;
			// earlier ones (for example iperf startup overloading a deep
			// linear-walk card) land in FalseAlerts instead.
			if device != "target" || p.Detected || s.FloodRatePPS <= 0 || at < s.FloodStart {
				return
			}
			p.Detected = true
			p.AlertAt = at
			p.TimeToDetect = at - s.FloodStart
			p.ExposedAtDetect = exposed()
			if !s.Respond {
				return
			}
			settled = false
			if _, err := srv.SetPolicy("target", ChaosPolicy); err != nil {
				settled, pushErr = true, err
				return
			}
			err := srv.PushWith("target", tb.Target.IP(), s.Push, func(err error) {
				settled, pushErr = true, err
			})
			if err != nil {
				settled, pushErr = true, err
			}
		},
	})
	if err != nil {
		return DetectionPoint{}, err
	}
	collector.Track("target")
	collector.Track("client")

	polAgent.OnInstall = func(version uint32, rs *fw.RuleSet) {
		if !p.Converged {
			p.Converged = true
			p.ConvergedAt = tb.Kernel.Now()
			p.ResponseTime = p.ConvergedAt - s.FloodStart
			p.ExposedAtConverge = exposed()
		}
	}

	targetAgent, err := telemetry.NewAgent(tb.Target, telemetry.AgentConfig{
		Device:       "target",
		Collector:    tb.PolicyServer.IP(),
		Interval:     s.ReportEvery,
		RulesVersion: polAgent.InstalledVersion,
	})
	if err != nil {
		return DetectionPoint{}, err
	}
	clientAgent, err := telemetry.NewAgent(tb.Client, telemetry.AgentConfig{
		Device:    "client",
		Collector: tb.PolicyServer.IP(),
		Interval:  s.ReportEvery,
	})
	if err != nil {
		return DetectionPoint{}, err
	}
	targetAgent.Start()
	clientAgent.Start()

	if s.Metrics != nil {
		collector.PublishMetrics(s.Metrics)
		targetAgent.PublishMetrics(s.Metrics)
		clientAgent.PublishMetrics(s.Metrics)
		tb.Target.NIC().PublishMetrics(s.Metrics, obs.L("host", "target"))
		polAgent.PublishMetrics(s.Metrics, obs.L("host", "target"))
		srv.PublishMetrics(s.Metrics)
	}

	var flood *measure.Flooder
	if s.FloodRatePPS > 0 {
		flood = measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
			RatePPS: s.FloodRatePPS,
			DstPort: FloodPort,
		})
		tb.Kernel.After(s.FloodStart, flood.Start)
	}

	var burst *measure.Flooder
	if s.BenignBurstPPS > 0 {
		if _, err := tb.Target.BindUDP(BenignBurstPort); err != nil {
			return DetectionPoint{}, err
		}
		burst = measure.NewFlooder(tb.Client, tb.Target.IP(), measure.FloodConfig{
			RatePPS: s.BenignBurstPPS,
			DstPort: BenignBurstPort,
		})
		var on, off func()
		on = func() {
			burst.Start()
			tb.Kernel.After(s.BenignBurstOn, off)
		}
		off = func() {
			burst.Stop()
			tb.Kernel.After(s.BenignBurstOff, on)
		}
		on()
	}

	if s.Iperf {
		res, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{Duration: s.Duration})
		if err != nil {
			return DetectionPoint{}, err
		}
		p.Iperf = res
	} else if err := tb.Kernel.RunFor(s.Duration); err != nil {
		return DetectionPoint{}, err
	}
	if flood != nil {
		flood.Stop()
		p.FloodSent = flood.Sent()
	}
	if burst != nil {
		burst.Stop()
	}
	// Let a late responsive push settle so the point reports its true
	// terminal outcome even when the window ends mid-backoff. Telemetry
	// keeps flowing through the settle — stopping the agents here would
	// make the watchdog (correctly) alert on the manufactured silence,
	// and the post-mitigation timeline should show the detector walking
	// back to healthy.
	if !settled {
		if err := tb.Kernel.RunFor(15 * time.Second); err != nil {
			return DetectionPoint{}, err
		}
	} else if flood != nil {
		// The push finished inside the window: still drain briefly so
		// the detector observes post-flood calm and the terminal fleet
		// state reflects recovery, not a mid-flood snapshot.
		if err := tb.Kernel.RunFor(2 * time.Second); err != nil {
			return DetectionPoint{}, err
		}
	}
	if pushErr != nil {
		p.PushError = pushErr.Error()
	}

	p.ExposedTotal = exposed()
	if !p.Detected {
		p.ExposedAtDetect = p.ExposedTotal
	}
	if s.Respond && !p.Converged {
		p.ExposedAtConverge = p.ExposedTotal
	}

	if h := collector.Health("target"); h != nil {
		p.Timeline = h.Detector.Transitions()
		p.FinalState = h.Detector.State()
		p.Gaps = h.Gaps
		for _, tr := range p.Timeline {
			if tr.To == telemetry.AlertAlerting && (s.FloodRatePPS <= 0 || tr.At < s.FloodStart) {
				p.FalseAlerts++
			}
		}
	}
	if h := collector.Health("client"); h != nil {
		p.ClientTimeline = h.Detector.Transitions()
		p.FalseAlerts += h.Detector.Alerts()
	}
	p.Reports, p.Corrupt, _ = collector.Totals()
	for _, name := range collector.Devices() {
		h := collector.Health(name)
		p.Fleet = append(p.Fleet, DeviceSummary{
			Device:  name,
			State:   h.Detector.State(),
			Reports: h.Reports,
			Gaps:    h.Gaps,
			Alerts:  h.Detector.Alerts(),
			LastSeen: func() time.Duration {
				if h.Reports == 0 {
					return -1
				}
				return h.LastAt
			}(),
		})
	}
	for _, a := range []*telemetry.Agent{targetAgent, clientAgent} {
		sent, failed := a.Sent()
		p.AgentReports += sent
		p.AgentSendFails += failed
	}

	p.TargetLocked = tb.Target.NIC().Locked()
	p.TargetNIC = tb.Target.NIC().Stats()
	p.SimSeconds = tb.Kernel.Now().Seconds()
	p.WallBusy = tb.Kernel.WallBusy()
	return p, nil
}
