package core_test

import (
	"fmt"

	"barbican/internal/core"
)

// Reproduce the paper's headline number: the flood rate that denies
// service to an EFW enforcing a single allow rule.
func ExampleMinFloodRate() {
	r, err := core.MinFloodRate(core.Scenario{
		Device:       core.DeviceEFW,
		Depth:        1,
		FloodAllowed: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The paper: "an attacker only needs to generate a flood of
	// 12,500 packets per second".
	fmt.Printf("DoS found: %v, between 9k and 16k pps: %v\n",
		r.Found, r.RatePPS > 9_000 && r.RatePPS < 16_000)
	// Output: DoS found: true, between 9k and 16k pps: true
}
