package core

import (
	"time"

	"barbican/internal/faults"
	"barbican/internal/fw"
	"barbican/internal/fw/sem"
	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/policy"
)

// ChaosPolicy is the flood-mitigating policy the chaos scenarios push
// while the target is under attack: deny the flood signature, allow the
// measurement traffic.
const ChaosPolicy = `deny in proto udp from any to any port 7
default allow
`

// ChaosScenario describes a chaos experiment: the target starts
// unprotected and under flood, and the policy server pushes the
// mitigating policy over a management channel subjected to a fault
// plan. The measurement is whether (and how fast) the policy plane
// converges, and what bandwidth remains available.
type ChaosScenario struct {
	// Device is the target's firewall card.
	Device Device
	// FloodRatePPS, when positive, floods the target for the whole run.
	FloodRatePPS float64
	// MgmtFaults is applied to both directions of the policy server's
	// access link; the zero plan leaves the channel clean.
	MgmtFaults faults.Plan
	// FaultSeed seeds the fault injectors; zero means Seed.
	FaultSeed int64
	// Seed seeds the simulation; zero means 1.
	Seed int64
	// PushAt is when the push starts (virtual time); zero means 1 s.
	PushAt time.Duration
	// Duration is the bandwidth measurement window; zero means 5 s.
	Duration time.Duration
	// Push tunes the server's retry engine. The zero value uses the
	// defaults; MaxAttempts: 1 reproduces the pre-retry single-shot
	// behavior, which never converges through a partition.
	Push policy.PushOptions
	// VerifySemantics runs the exact semantics engine when the agent
	// installs the pushed policy: the installed rule set is proven
	// verdict-identical to what the server pushed over the entire
	// packet space, and the card's compiled classifier is proven equal
	// to the linear walk on it — semantic convergence, not just
	// version-number convergence. The proof outcome lands in
	// ChaosPoint.SemanticsVerified / SemanticsError.
	VerifySemantics bool
}

// ChaosPoint is the outcome of a chaos scenario.
type ChaosPoint struct {
	Scenario ChaosScenario
	// Converged reports whether the agent installed the pushed policy;
	// ConvergedAt is when (virtual time), ConvergeTime is measured from
	// PushAt.
	Converged    bool
	ConvergedAt  time.Duration
	ConvergeTime time.Duration
	// PushError is the push's terminal error ("" on success or while
	// unsettled).
	PushError string
	Server    policy.ServerStats
	Agent     policy.AgentStats
	Iperf     measure.IperfResult
	FloodSent uint64
	// SemanticsVerified reports whether the install-time equivalence
	// proof succeeded (only set when Scenario.VerifySemantics and the
	// agent converged); SemanticsError carries the disproof or proof
	// failure ("" otherwise).
	SemanticsVerified bool
	SemanticsError    string
	// TargetLocked reports the EFW Deny-All lockup.
	TargetLocked bool
	TargetNIC    nic.Stats
	SimSeconds   float64
	WallBusy     time.Duration
}

// Mbps returns the measured available bandwidth.
func (p ChaosPoint) Mbps() float64 { return p.Iperf.Mbps }

// RunChaos executes a chaos scenario: flood from t=0, policy push at
// PushAt over the faulty management channel, available bandwidth
// measured across the window, then the kernel runs on until the push
// settles (success or exhausted retry budget).
func RunChaos(s ChaosScenario) (ChaosPoint, error) {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = s.Seed
	}
	if s.PushAt == 0 {
		s.PushAt = time.Second
	}
	if s.Duration == 0 {
		s.Duration = 5 * time.Second
	}

	tb, err := NewTestbed(TestbedOptions{TargetDevice: s.Device, Seed: s.Seed})
	if err != nil {
		return ChaosPoint{}, err
	}
	psk := policy.DeriveKey("chaos")
	srv := policy.NewServer(tb.PolicyServer, psk)
	agent, err := policy.NewAgent(tb.Target, tb.PolicyServer.IP(), psk)
	if err != nil {
		return ChaosPoint{}, err
	}
	faults.Attach(tb.PolicyServer.NIC().Endpoint(), s.MgmtFaults, s.FaultSeed)

	p := ChaosPoint{Scenario: s}
	agent.OnInstall = func(version uint32, rs *fw.RuleSet) {
		if !p.Converged {
			p.Converged = true
			p.ConvergedAt = tb.Kernel.Now()
			p.ConvergeTime = p.ConvergedAt - s.PushAt
			if s.VerifySemantics {
				p.SemanticsVerified, p.SemanticsError = verifyInstall(ChaosPolicy, rs)
			}
		}
	}

	var flood *measure.Flooder
	if s.FloodRatePPS > 0 {
		flood = measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
			RatePPS: s.FloodRatePPS,
			DstPort: FloodPort,
		})
		flood.Start()
	}

	settled := false
	var pushErr error
	tb.Kernel.After(s.PushAt, func() {
		if _, err := srv.SetPolicy("target", ChaosPolicy); err != nil {
			settled, pushErr = true, err
			return
		}
		err := srv.PushWith("target", tb.Target.IP(), s.Push, func(err error) {
			settled, pushErr = true, err
		})
		if err != nil {
			settled, pushErr = true, err
		}
	})

	res, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{Duration: s.Duration})
	if err != nil {
		return ChaosPoint{}, err
	}
	p.Iperf = res
	if flood != nil {
		flood.Stop()
		p.FloodSent = flood.Sent()
	}
	// Let the retry engine settle so the point reports the push's true
	// terminal outcome even when the window ends mid-backoff.
	if !settled {
		if err := tb.Kernel.RunFor(15 * time.Second); err != nil {
			return ChaosPoint{}, err
		}
	}
	if pushErr != nil {
		p.PushError = pushErr.Error()
	}
	p.Server = srv.Stats()
	p.Agent = agent.Stats()
	p.TargetLocked = tb.Target.NIC().Locked()
	p.TargetNIC = tb.Target.NIC().Stats()
	p.SimSeconds = tb.Kernel.Now().Seconds()
	p.WallBusy = tb.Kernel.WallBusy()
	return p, nil
}

// verifyInstall proves semantic convergence for one installed rule
// set: the installed rules must be verdict-identical to the pushed
// policy text over the entire packet space, and the compiled
// classifier the card runs must equal the linear walk on them.
func verifyInstall(pushed string, installed *fw.RuleSet) (ok bool, detail string) {
	want, err := policy.Parse(pushed)
	if err != nil {
		return false, "parse pushed policy: " + err.Error()
	}
	res, err := sem.Diff(want, installed, sem.DiffOptions{})
	if err != nil {
		return false, "equivalence proof: " + err.Error()
	}
	if !res.Equivalent {
		detail = "installed policy is not equivalent to the pushed policy"
		if len(res.Witnesses) > 0 {
			detail += ": " + res.Witnesses[0].String()
		}
		return false, detail
	}
	vres, err := sem.VerifyCompiled(installed, sem.VerifyOptions{})
	if err != nil {
		return false, "compiled-vs-walk proof: " + err.Error()
	}
	if !vres.OK() {
		if vres.Mismatch != nil {
			return false, "compiled classifier diverges: " + vres.Mismatch.String()
		}
		return false, "compiled classifier counter parity: " + vres.ParityError
	}
	return true, ""
}
