package core

import (
	"testing"

	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/nic/conntrack"
)

func TestStatefulRuleSetShape(t *testing.T) {
	rs, err := StatefulRuleSet(64)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Stateful() {
		t.Fatal("StatefulRuleSet is not stateful")
	}
	if got := len(rs.Rules()); got != 65 {
		t.Fatalf("depth-64 set has %d rules, want 65 (63 pads + new + established)", got)
	}
}

func runStateflood(t *testing.T, s StatefloodScenario) StatefloodPoint {
	t.Helper()
	p, err := RunStateflood(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStatefloodBaseline: with no flood, the echo session survives
// untouched — the stateful policy itself costs the session nothing.
func TestStatefloodBaseline(t *testing.T) {
	p := runStateflood(t, StatefloodScenario{Seed: 3})
	if r := p.SessionRatio(); r != 1 {
		t.Fatalf("baseline session ratio = %.2f, want 1.00 (%d/%d)",
			r, p.SessionEchoed, p.SessionSent)
	}
	if p.Conntrack.Created == 0 {
		t.Error("session created no conntrack state")
	}
}

// TestStatefloodStateVsPacketRate is the acceptance demonstration at
// fixed rates: 6000 pps of SYN flood exhausts the LRU state table and
// severs the established session, while the same 6000 pps as a plain
// UDP packet flood does not — state exhaustion is a strictly cheaper
// DoS than packet-rate exhaustion on the same card.
func TestStatefloodStateVsPacketRate(t *testing.T) {
	syn := runStateflood(t, StatefloodScenario{
		FloodRatePPS: 6000, FloodKind: measure.FloodTCPSYN,
		EvictPolicy: conntrack.EvictLRU, Seed: 3,
	})
	if !syn.DoSed() {
		t.Errorf("SYN flood @6000pps did not DoS the session (ratio %.2f)", syn.SessionRatio())
	}
	if syn.Conntrack.Evicted == 0 {
		t.Error("SYN flood evicted nothing — table never churned")
	}

	udp := runStateflood(t, StatefloodScenario{
		FloodRatePPS: 6000, FloodKind: measure.FloodUDP, Seed: 3,
	})
	if udp.DoSed() {
		t.Errorf("UDP flood @6000pps DoSed the session (ratio %.2f); state exhaustion should be strictly cheaper", udp.SessionRatio())
	}
}

// TestStatefloodSYNDropRestoresTolerance: the syn-early-drop eviction
// policy refuses to evict assured entries, so the established session
// survives a SYN rate that collapses LRU by several multiples.
func TestStatefloodSYNDropRestoresTolerance(t *testing.T) {
	p := runStateflood(t, StatefloodScenario{
		FloodRatePPS: 20000, FloodKind: measure.FloodTCPSYN,
		EvictPolicy: conntrack.EvictSYNDrop, Seed: 3,
	})
	if p.DoSed() {
		t.Errorf("syn-drop @20000pps: session DoSed (ratio %.2f)", p.SessionRatio())
	}
}

// TestStatefloodACKProfile: an ACK flood against an established-only
// policy creates no state at all — every flood packet is an INVALID
// hard drop and the table holds just the session.
func TestStatefloodACKProfile(t *testing.T) {
	p := runStateflood(t, StatefloodScenario{
		FloodRatePPS: 8000, FloodKind: measure.FloodTCPACK, Seed: 3,
	})
	if p.DoSed() {
		t.Errorf("ACK flood @8000pps DoSed the session (ratio %.2f)", p.SessionRatio())
	}
	if p.TargetNIC.RxNoStateDrops == 0 {
		t.Error("ACK flood produced no no-state drops")
	}
	if p.CTEntries > 2 {
		t.Errorf("ACK flood grew the table to %d entries", p.CTEntries)
	}
}

// TestStateRecoveryDesync reproduces the state-desync hazard and shows
// the fix: RecoveryKeep leaves the outage-born flow's absence baked in
// (its packets are INVALID to the restored stateful policy — severed),
// RecoveryFlush severs everything, and RecoveryResync's loose pickup
// window re-adopts both flows mid-stream.
func TestStateRecoveryDesync(t *testing.T) {
	cases := []struct {
		policy          nic.StateRecovery
		pre, mid, fresh bool
		note            string
	}{
		{nic.RecoveryKeep, true, false, true, "keep: the outage-born flow must be severed (the desync hazard)"},
		{nic.RecoveryFlush, false, false, true, "flush: every pre-existing flow must be severed"},
		{nic.RecoveryResync, true, true, true, "resync: every flow must survive"},
	}
	for _, c := range cases {
		t.Run(c.policy.String(), func(t *testing.T) {
			res, err := RunStateRecovery(StateRecoveryScenario{Recovery: c.policy, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.PreOutageOK != c.pre || res.MidOutageOK != c.mid || res.NewFlowOK != c.fresh {
				t.Errorf("%s: pre=%v mid=%v new=%v, want pre=%v mid=%v new=%v",
					c.note, res.PreOutageOK, res.MidOutageOK, res.NewFlowOK,
					c.pre, c.mid, c.fresh)
			}
			if res.WatchdogResets == 0 {
				t.Error("outage never triggered the watchdog")
			}
		})
	}
}
