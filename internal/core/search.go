package core

import (
	"time"

	"barbican/internal/apps"
)

// DoSThresholdMbps is the paper's denial-of-service criterion: the
// bandwidth measurement "fell to approximately 0 Mbps" — here read as
// under 2.5% of the network's nominal 100 Mbps.
const DoSThresholdMbps = 2.5

// Search bounds for the minimum flood rate, in packets per second.
const (
	MinSearchRatePPS = 250
	MaxSearchRatePPS = 40_000
	// SearchResolutionPPS is the binary search's terminal interval.
	SearchResolutionPPS = 125
)

// MinFloodResult reports the minimum-flood-rate search for one scenario.
type MinFloodResult struct {
	Scenario Scenario
	// Found reports whether any rate within the search bounds caused
	// denial of service.
	Found bool
	// RatePPS is the minimum flood rate that drove the measured
	// bandwidth below DoSThresholdMbps.
	RatePPS float64
	// LockedUp reports that the card wedged during the successful flood
	// (the EFW Deny-All failure); the paper could not record data for
	// this case because the card required an agent restart.
	LockedUp bool
	// Probes counts the measurements the search ran.
	Probes int
	// SimSeconds and WallBusy accumulate the probes' virtual time and
	// wall-clock cost for the executor's speedup accounting.
	SimSeconds float64
	WallBusy   time.Duration
}

// MinFloodRate finds the minimum flood rate causing denial of service
// for the scenario by binary search over the flood rate. The scenario's
// FloodRatePPS field is ignored; each probe builds a fresh testbed so
// probes are independent and deterministic.
func MinFloodRate(s Scenario) (MinFloodResult, error) {
	return MinFloodRateFrom(s, 0)
}

// MinFloodRateFrom is MinFloodRate warm-started from a neighboring
// result. A positive hint (typically the threshold found at the previous
// rule-set depth) seeds the bisection bracket by galloping outward from
// the hint instead of probing the full search bounds, cutting probe
// count when adjacent depths have nearby thresholds — which Figure 3(b)'s
// sweep structure guarantees. hint <= 0 runs the cold search.
func MinFloodRateFrom(s Scenario, hint float64) (MinFloodResult, error) {
	if s.Duration == 0 {
		s.Duration = 2 * time.Second // probes trade window length for search depth
	}
	res := MinFloodResult{Scenario: s}

	probe := func(rate float64) (bool, bool, error) {
		sc := s
		sc.FloodRatePPS = rate
		p, err := RunBandwidth(sc)
		if err != nil {
			return false, false, err
		}
		res.Probes++
		res.SimSeconds += p.SimSeconds
		res.WallBusy += p.WallBusy
		// A wedged card is a successful denial of service even if some
		// bytes moved before it locked up.
		return p.Mbps() < DoSThresholdMbps || p.TargetLocked, p.TargetLocked, nil
	}

	var lo, hi float64
	if hint > 0 {
		// Warm start: bracket the threshold by galloping outward from the
		// hint. Each direction doubles its distance from the hint until the
		// probe outcome flips or the cold bound is reached.
		lo, hi = hint, hint
		if lo < MinSearchRatePPS {
			lo = MinSearchRatePPS
		}
		if hi > MaxSearchRatePPS {
			hi = MaxSearchRatePPS
		}
		ok, locked, err := probe(hi)
		if err != nil {
			return res, err
		}
		step := float64(SearchResolutionPPS)
		if ok {
			// The hint already causes DoS: gallop down for a non-DoS lo.
			res.Found = true
			res.LockedUp = locked
			for {
				lo = hi - step
				if lo <= MinSearchRatePPS {
					lo = MinSearchRatePPS
				}
				ok2, locked2, err := probe(lo)
				if err != nil {
					return res, err
				}
				if !ok2 {
					break
				}
				hi = lo
				res.LockedUp = locked2
				if lo == MinSearchRatePPS {
					// Even the floor rate causes DoS.
					res.RatePPS = lo
					return res, nil
				}
				step *= 2
			}
		} else {
			// The hint does not cause DoS: gallop up for a DoS hi.
			for {
				hi = lo + step
				if hi >= MaxSearchRatePPS {
					hi = MaxSearchRatePPS
				}
				ok2, locked2, err := probe(hi)
				if err != nil {
					return res, err
				}
				if ok2 {
					res.Found = true
					res.LockedUp = locked2
					break
				}
				lo = hi
				if hi == MaxSearchRatePPS {
					return res, nil // not even the maximum rate causes DoS
				}
				step *= 2
			}
		}
	} else {
		lo, hi = float64(MinSearchRatePPS), float64(MaxSearchRatePPS)
		ok, locked, err := probe(hi)
		if err != nil {
			return res, err
		}
		if !ok {
			return res, nil // not even the maximum rate causes DoS
		}
		res.Found = true
		res.LockedUp = locked
		// Invariant: hi causes DoS, lo does not (or lo is the lower bound).
		if ok2, locked2, err := probe(lo); err != nil {
			return res, err
		} else if ok2 {
			res.RatePPS = lo
			res.LockedUp = locked2
			return res, nil
		}
	}
	for hi-lo > SearchResolutionPPS {
		mid := (lo + hi) / 2
		ok, locked, err := probe(mid)
		if err != nil {
			return res, err
		}
		if ok {
			hi = mid
			res.LockedUp = locked
		} else {
			lo = mid
		}
	}
	res.RatePPS = hi
	return res, nil
}

// setupHTTPServer starts the Table 1 web server on the testbed target.
func setupHTTPServer(tb *Testbed) error {
	_, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{})
	return err
}
