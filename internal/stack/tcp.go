package stack

import (
	"fmt"
	"time"

	"barbican/internal/packet"
	"barbican/internal/sim"
)

// ConnState is a TCP connection state (RFC 793 subset).
type ConnState int

// TCP states.
const (
	StateSynSent ConnState = iota + 1
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
	StateClosed
)

// String names the state as in RFC 793.
func (s ConnState) String() string {
	switch s {
	case StateSynSent:
		return "SYN-SENT"
	case StateSynRcvd:
		return "SYN-RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait1:
		return "FIN-WAIT-1"
	case StateFinWait2:
		return "FIN-WAIT-2"
	case StateCloseWait:
		return "CLOSE-WAIT"
	case StateClosing:
		return "CLOSING"
	case StateLastAck:
		return "LAST-ACK"
	case StateTimeWait:
		return "TIME-WAIT"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

const (
	defaultWindow  = 65535
	initialRTO     = 200 * time.Millisecond
	maxRTO         = 2 * time.Second
	maxRetransmits = 8
)

// Conn is a TCP connection endpoint.
//
// All callbacks run on the simulation's event loop. Set them before data
// can arrive (immediately after DialTCP, or inside the listener's accept
// callback).
type Conn struct {
	host *Host
	key  connKey

	state ConnState
	mss   int
	wnd   uint32

	// Send side. buf holds unacknowledged and unsent bytes; bufSeq is
	// the sequence number of buf[0].
	buf       []byte
	bufSeq    uint32
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	sndMax    uint32 // highest sequence ever sent (distinguishes retransmits)
	dupAcks   int
	peerWnd   uint32
	cwnd      int // congestion window, bytes (Reno)
	ssthresh  int
	finQueued bool
	finSent   bool
	finSeq    uint32

	rto         time.Duration
	rtoTimer    *sim.Event
	retransmits int
	timeWait    *sim.Event

	// NewReno fast-recovery state.
	fastRecovery bool
	recover      uint32

	// Receive side. ooo holds out-of-order segments awaiting the hole
	// to fill (keyed by sequence number), bounded by the window.
	rcvNxt   uint32
	ooo      map[uint32][]byte
	oooBytes int

	// tx is the connection's segment marshal scratch, reused when the
	// host resolves neighbors statically.
	tx []byte

	// OnConnect fires when the handshake completes.
	OnConnect func()
	// OnData fires for each in-order data segment.
	OnData func([]byte)
	// OnPeerClose fires when the peer's FIN is received (EOF).
	OnPeerClose func()
	// OnClose fires once when the connection terminates gracefully.
	OnClose func()
	// OnReset fires when the connection is reset or aborted.
	OnReset func()
	// OnAcked fires when previously sent payload bytes are acknowledged;
	// senders use it to refill the buffer (see measure.Iperf).
	OnAcked func(n int)

	stats ConnStats
}

// ConnStats counts per-connection activity.
type ConnStats struct {
	BytesSent     uint64 // payload bytes handed to the network (excluding retransmits)
	BytesAcked    uint64
	BytesReceived uint64
	SegmentsSent  uint64
	Retransmits   uint64
	DupAcksSent   uint64
	RTOEvents     uint64
	FastRetrans   uint64
}

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// DialTCP initiates a connection to dst:dstPort. The returned connection
// is in SYN-SENT; OnConnect fires when established. Data written before
// the handshake completes is queued.
func (h *Host) DialTCP(dst packet.IP, dstPort uint16) (*Conn, error) {
	local, err := h.allocEphemeral(func(p uint16) bool {
		if _, used := h.listeners[p]; used {
			return true
		}
		_, used := h.conns[connKey{remote: dst, remotePort: dstPort, localPort: p}]
		return used
	})
	if err != nil {
		return nil, err
	}
	key := connKey{remote: dst, remotePort: dstPort, localPort: local}
	c := h.newConn(key, StateSynSent)
	c.sendSegment(packet.FlagSYN, c.iss, nil, false)
	c.armRTO()
	return c, nil
}

func (h *Host) newConn(key connKey, state ConnState) *Conn {
	iss := uint32(h.kernel.Rand().Int63())
	c := &Conn{
		host:    h,
		key:     key,
		state:   state,
		mss:     h.MSS(),
		wnd:     defaultWindow,
		peerWnd: defaultWindow,
		iss:     iss,
		bufSeq:  iss + 1,
		sndUna:  iss,
		sndNxt:  iss + 1,
		sndMax:  iss + 1,
		rto:     initialRTO,
	}
	c.cwnd = 4 * c.mss // RFC 3390-style initial window
	c.ssthresh = defaultWindow
	c.ooo = make(map[uint32][]byte)
	h.conns[key] = c
	return c
}

// State returns the connection state.
func (c *Conn) State() ConnState { return c.state }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (packet.IP, uint16) { return c.key.remote, c.key.remotePort }

// MSS returns the maximum segment size in use.
func (c *Conn) MSS() int { return c.mss }

// Buffered returns the number of unacknowledged plus unsent bytes.
func (c *Conn) Buffered() int { return len(c.buf) }

// Write queues payload for transmission. It returns an error once the
// local side has closed or the connection is dead.
func (c *Conn) Write(data []byte) error {
	switch c.state {
	case StateSynSent, StateSynRcvd, StateEstablished, StateCloseWait:
	default:
		return fmt.Errorf("stack: write on %v connection", c.state)
	}
	if c.finQueued {
		return fmt.Errorf("stack: write after close")
	}
	c.buf = append(c.buf, data...)
	c.pump()
	return nil
}

// Close initiates a graceful close: queued data is sent, then a FIN.
func (c *Conn) Close() {
	if c.finQueued || c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	c.finQueued = true
	c.pump()
}

// Abort resets the connection immediately, notifying the peer.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(packet.FlagRST|packet.FlagACK, c.sndNxt, nil, false)
	c.teardown(true)
}

// input processes one inbound segment.
func (c *Conn) input(seg *packet.TCPSegment) {
	if seg.Flags.Has(packet.FlagRST) {
		if c.state == StateSynSent && (!seg.Flags.Has(packet.FlagACK) || seg.Ack != c.iss+1) {
			return // RST not for our SYN
		}
		c.teardown(true)
		return
	}
	c.peerWnd = uint32(seg.Window)

	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(packet.FlagSYN|packet.FlagACK) && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.rcvNxt = seg.Seq + 1
			c.state = StateEstablished
			c.resetRTOState()
			c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
			if c.OnConnect != nil {
				c.OnConnect()
			}
			c.pump()
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(packet.FlagACK) && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.state = StateEstablished
			c.resetRTOState()
			if c.OnConnect != nil {
				c.OnConnect()
			}
			// Fall through: the ACK may carry data.
			c.processEstablished(seg)
			c.pump()
		}
		return
	case StateClosed:
		return
	}
	c.processEstablished(seg)
}

// processEstablished handles ACK, data, and FIN for synchronized states.
func (c *Conn) processEstablished(seg *packet.TCPSegment) {
	if seg.Flags.Has(packet.FlagACK) {
		c.processAck(seg.Ack)
	}

	if len(seg.Payload) > 0 && c.receivesData() {
		if !c.receiveData(seg) {
			return
		}
	}

	if seg.Flags.Has(packet.FlagFIN) {
		finSeq := seg.Seq + uint32(len(seg.Payload))
		if finSeq != c.rcvNxt {
			c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
			return
		}
		c.rcvNxt++
		c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait1:
			// Our FIN not yet acked (otherwise we'd be in FIN-WAIT-2).
			c.state = StateClosing
		case StateFinWait2:
			c.enterTimeWait()
		}
		return
	}

	c.pump()
}

// receivesData reports whether the state accepts inbound payload.
func (c *Conn) receivesData() bool {
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
		return true
	default:
		return false
	}
}

// receiveData handles a data segment: in-order data is delivered and any
// contiguous buffered data drained; out-of-order data within the window
// is buffered for reassembly and acknowledged with a duplicate ACK. It
// reports whether processing of the enclosing segment should continue
// (false for out-of-order segments, whose FIN cannot be processed yet).
func (c *Conn) receiveData(seg *packet.TCPSegment) bool {
	switch {
	case seg.Seq == c.rcvNxt:
		c.deliver(seg.Payload)
		// Drain buffered segments made contiguous by this arrival.
		for {
			p, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.oooBytes -= len(p)
			c.deliver(p)
		}
		if !seg.Flags.Has(packet.FlagFIN) {
			c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
		}
		return true
	case seqLT(c.rcvNxt, seg.Seq) && seg.Seq-c.rcvNxt < c.wnd:
		// In-window, out-of-order: buffer for reassembly (bounded), and
		// signal the hole with a duplicate ACK.
		if _, dup := c.ooo[seg.Seq]; !dup && c.oooBytes+len(seg.Payload) <= int(c.wnd) {
			c.ooo[seg.Seq] = append([]byte(nil), seg.Payload...)
			c.oooBytes += len(seg.Payload)
		}
		c.stats.DupAcksSent++
		c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
		return false
	default:
		// Old (already delivered) data: re-acknowledge.
		c.sendSegment(packet.FlagACK, c.sndNxt, nil, false)
		return false
	}
}

func (c *Conn) deliver(p []byte) {
	c.rcvNxt += uint32(len(p))
	c.stats.BytesReceived += uint64(len(p))
	if c.OnData != nil {
		c.OnData(p)
	}
}

func (c *Conn) processAck(ack uint32) {
	if !(seqLT(c.sndUna, ack) && seqLE(ack, c.sndMax)) {
		// Duplicate ACK: after three, fast-retransmit the segment the
		// receiver is waiting for.
		if ack == c.sndUna && c.sndMax != c.sndUna {
			c.dupAcks++
			if c.dupAcks == 3 && !c.fastRecovery {
				// NewReno fast retransmit: halve the window and enter
				// fast recovery until the whole flight is acknowledged.
				c.ssthresh = c.inflight() / 2
				if c.ssthresh < 2*c.mss {
					c.ssthresh = 2 * c.mss
				}
				c.cwnd = c.ssthresh
				c.fastRecovery = true
				c.recover = c.sndMax
				c.stats.FastRetrans++
				c.retransmitFront()
			}
		}
		return
	}
	c.dupAcks = 0
	acked := int(ack - c.sndUna)
	c.sndUna = ack
	if c.fastRecovery {
		if seqLT(ack, c.recover) {
			// Partial ACK: the next hole is at the new sndUna.
			c.retransmitFront()
		} else {
			c.fastRecovery = false
			c.cwnd = c.ssthresh
		}
	} else {
		// Reno window growth: slow start below ssthresh, then additive.
		if c.cwnd < c.ssthresh {
			inc := acked
			if inc > c.mss {
				inc = c.mss
			}
			c.cwnd += inc
		} else {
			c.cwnd += c.mss * c.mss / c.cwnd
		}
		if c.cwnd > defaultWindow {
			c.cwnd = defaultWindow
		}
	}
	if seqLT(c.sndNxt, ack) {
		c.sndNxt = ack
	}

	// Trim acknowledged payload bytes from the buffer.
	dataAck := ack
	if c.finSent && seqLT(c.finSeq, dataAck) {
		dataAck = c.finSeq // don't count the FIN as payload
	}
	if n := int(dataAck - c.bufSeq); n > 0 {
		if n > len(c.buf) {
			n = len(c.buf)
		}
		c.buf = c.buf[n:]
		c.bufSeq += uint32(n)
		c.stats.BytesAcked += uint64(n)
		if c.OnAcked != nil {
			c.OnAcked(n)
		}
	}
	c.resetRTOState()
	if c.sndMax != c.sndUna {
		c.armRTO()
	}

	finAcked := c.finSent && seqLE(c.finSeq+1, ack)
	if finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.teardown(false)
		}
	}
}

// pump transmits as much queued data (and the queued FIN) as the window
// allows.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	limit := c.wnd
	if c.peerWnd < limit {
		limit = c.peerWnd
	}
	if uint32(c.cwnd) < limit {
		limit = uint32(c.cwnd)
	}
	for {
		offset := int(c.sndNxt - c.bufSeq)
		if offset >= len(c.buf) {
			break
		}
		inflight := c.sndNxt - c.sndUna
		if inflight >= limit {
			break
		}
		n := len(c.buf) - offset
		if n > c.mss {
			n = c.mss
		}
		if avail := int(limit - inflight); n > avail {
			n = avail
		}
		payload := c.buf[offset : offset+n]
		flags := packet.FlagACK
		if offset+n == len(c.buf) {
			flags |= packet.FlagPSH
		}
		retransmit := seqLT(c.sndNxt, c.sndMax)
		c.sendSegment(flags, c.sndNxt, payload, retransmit)
		c.sndNxt += uint32(n)
		if seqLT(c.sndMax, c.sndNxt) {
			c.stats.BytesSent += uint64(c.sndNxt - c.sndMax)
			c.sndMax = c.sndNxt
		}
	}

	if c.finQueued && int(c.sndNxt-c.bufSeq) == len(c.buf) {
		switch {
		case !c.finSent:
			c.finSent = true
			c.finSeq = c.sndNxt
			c.sendSegment(packet.FlagFIN|packet.FlagACK, c.sndNxt, nil, false)
			c.sndNxt++
			if seqLT(c.sndMax, c.sndNxt) {
				c.sndMax = c.sndNxt
			}
			switch c.state {
			case StateEstablished:
				c.state = StateFinWait1
			case StateCloseWait:
				c.state = StateLastAck
			}
		case c.sndNxt == c.finSeq:
			// Go-back-N rolled over an unacknowledged FIN: resend it.
			c.sendSegment(packet.FlagFIN|packet.FlagACK, c.finSeq, nil, true)
			c.sndNxt++
		}
	}
	if c.sndMax != c.sndUna {
		c.armRTO()
	}
}

// inflight returns the number of sent-but-unacknowledged bytes.
func (c *Conn) inflight() int { return int(c.sndMax - c.sndUna) }

// retransmitFront resends the earliest unacknowledged segment (fast
// retransmit).
func (c *Conn) retransmitFront() {
	offset := int(c.sndUna - c.bufSeq)
	if offset >= 0 && offset < len(c.buf) {
		n := len(c.buf) - offset
		if n > c.mss {
			n = c.mss
		}
		c.sendSegment(packet.FlagACK, c.sndUna, c.buf[offset:offset+n], true)
		return
	}
	if c.finSent && c.sndUna == c.finSeq {
		c.sendSegment(packet.FlagFIN|packet.FlagACK, c.finSeq, nil, true)
	}
}

// sendSegment emits one segment. retransmit suppresses the sent counter.
func (c *Conn) sendSegment(flags packet.TCPFlags, seq uint32, payload []byte, retransmit bool) {
	seg := &packet.TCPSegment{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(c.wnd),
		Payload: payload,
	}
	if !flags.Has(packet.FlagACK) {
		seg.Ack = 0
	}
	c.stats.SegmentsSent++
	if retransmit {
		c.stats.Retransmits++
	}
	if !c.host.StaticNeighbors() {
		c.host.send(c.key.remote, packet.ProtoTCP, seg.Marshal(c.host.ip, c.key.remote))
		return
	}
	c.tx = seg.MarshalTo(c.host.ip, c.key.remote, c.tx[:0])
	c.host.send(c.key.remote, packet.ProtoTCP, c.tx)
}

func (c *Conn) armRTO() {
	if c.rtoTimer != nil && c.rtoTimer.Pending() {
		return
	}
	c.rtoTimer = c.host.kernel.After(c.rto, c.onRTO)
}

func (c *Conn) resetRTOState() {
	if c.rtoTimer != nil {
		c.rtoTimer.Cancel()
		c.rtoTimer = nil
	}
	c.retransmits = 0
	c.rto = initialRTO
}

func (c *Conn) onRTO() {
	c.rtoTimer = nil
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	if c.sndMax == c.sndUna {
		return // nothing outstanding
	}
	c.retransmits++
	if c.retransmits > maxRetransmits {
		c.teardown(true)
		return
	}
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	// Reno timeout: collapse to one segment and slow-start again.
	c.ssthresh = c.inflight() / 2
	if c.ssthresh < 2*c.mss {
		c.ssthresh = 2 * c.mss
	}
	c.cwnd = c.mss
	c.fastRecovery = false
	c.stats.RTOEvents++

	switch c.state {
	case StateSynSent:
		c.sendSegment(packet.FlagSYN, c.iss, nil, true)
	case StateSynRcvd:
		c.sendSegment(packet.FlagSYN|packet.FlagACK, c.iss, nil, true)
	case StateEstablished, StateCloseWait:
		// Go-back-N: the receiver discards out-of-order segments, so
		// resend everything from the first unacknowledged byte.
		c.sndNxt = c.sndUna
		c.pump()
	default:
		// FIN already sent (FIN-WAIT-1, LAST-ACK, CLOSING): resend the
		// earliest outstanding segment directly; pump no longer runs in
		// these states.
		c.retransmitFront()
	}
	c.armRTO()
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.resetRTOState()
	c.fireClose()
	c.timeWait = c.host.kernel.After(timeWaitDuration, func() {
		c.state = StateClosed
		if c.host.conns[c.key] == c {
			delete(c.host.conns, c.key)
		}
	})
}

// teardown finalizes the connection. reset indicates abnormal termination.
func (c *Conn) teardown(reset bool) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.resetRTOState()
	if c.timeWait != nil {
		c.timeWait.Cancel()
	}
	if c.host.conns[c.key] == c {
		delete(c.host.conns, c.key)
	}
	if reset {
		if c.OnReset != nil {
			c.OnReset()
		}
		return
	}
	c.fireClose()
}

func (c *Conn) fireClose() {
	if c.OnClose != nil {
		cb := c.OnClose
		c.OnClose = nil
		cb()
	}
}

// DefaultSYNBacklog bounds half-open connections per listener, as real
// stacks' SYN queues do. A SYN flood against an open port fills it; new
// SYNs are then dropped silently until handshakes complete or time out.
const DefaultSYNBacklog = 128

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	host     *Host
	port     uint16
	onAccept func(*Conn)
	accepted uint64

	backlog  int
	halfOpen map[connKey]*Conn
	synDrops uint64
}

// ListenTCP binds a TCP listener. onAccept runs when a connection's
// handshake completes; wire the connection's callbacks inside it.
func (h *Host) ListenTCP(port uint16, onAccept func(*Conn)) (*Listener, error) {
	if port == 0 {
		return nil, fmt.Errorf("stack: %s: listener needs an explicit port", h.name)
	}
	if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("stack: %s: TCP port %d already bound", h.name, port)
	}
	l := &Listener{
		host: h, port: port, onAccept: onAccept,
		backlog:  DefaultSYNBacklog,
		halfOpen: make(map[connKey]*Conn),
	}
	h.listeners[port] = l
	return l, nil
}

// SetBacklog adjusts the half-open connection bound (minimum 1).
func (l *Listener) SetBacklog(n int) {
	if n < 1 {
		n = 1
	}
	l.backlog = n
}

// SYNDrops returns how many SYNs were dropped by a full backlog.
func (l *Listener) SYNDrops() uint64 { return l.synDrops }

// HalfOpen returns the number of handshakes in progress.
func (l *Listener) HalfOpen() int { return len(l.halfOpen) }

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accepted returns the number of completed handshakes.
func (l *Listener) Accepted() uint64 { return l.accepted }

// Close unbinds the listener. Established connections are unaffected.
func (l *Listener) Close() {
	if l.host.listeners[l.port] == l {
		delete(l.host.listeners, l.port)
	}
}

// accept handles an inbound SYN by creating a half-open connection.
func (l *Listener) accept(src packet.IP, syn *packet.TCPSegment) {
	key := connKey{remote: src, remotePort: syn.SrcPort, localPort: l.port}
	if _, exists := l.host.conns[key]; exists {
		return // duplicate SYN; the half-open conn's RTO will resend SYN-ACK
	}
	if len(l.halfOpen) >= l.backlog {
		l.synDrops++
		return // SYN queue full: drop silently, as real stacks do
	}
	c := l.host.newConn(key, StateSynRcvd)
	c.rcvNxt = syn.Seq + 1
	c.peerWnd = uint32(syn.Window)
	l.halfOpen[key] = c
	release := func() {
		if l.halfOpen[key] == c {
			delete(l.halfOpen, key)
		}
	}
	onAccept := l.onAccept
	c.OnConnect = func() {
		release()
		l.accepted++
		if onAccept != nil {
			onAccept(c)
		}
	}
	// A half-open conn that gives up (RTO exhaustion or RST) must free
	// its backlog slot.
	c.OnReset = release
	c.sendSegment(packet.FlagSYN|packet.FlagACK, c.iss, nil, false)
	c.armRTO()
}
