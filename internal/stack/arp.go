package stack

import (
	"time"

	"barbican/internal/packet"
)

// ARP configuration: retry three times a second apart, cache entries for
// five minutes, queue at most eight datagrams per unresolved neighbor.
const (
	arpRetries      = 3
	arpRetryEvery   = time.Second
	arpCacheTTL     = 5 * time.Minute
	arpPendingLimit = 8
)

// ARPStats counts resolution activity.
type ARPStats struct {
	RequestsSent   uint64
	RepliesSent    uint64
	RepliesHeard   uint64
	CacheHits      uint64
	Failures       uint64 // resolutions abandoned after retries
	QueueOverflows uint64
}

type arpEntry struct {
	mac     packet.MAC
	expires time.Duration
}

type arpPending struct {
	datagrams []*packet.Datagram // queued datagrams awaiting the MAC
	retries   int
}

// arpState implements neighbor discovery for a host. It is created only
// when the host is configured without a static resolver.
type arpState struct {
	host    *Host
	cache   map[packet.IP]arpEntry
	pending map[packet.IP]*arpPending
	stats   ARPStats
}

func newARPState(h *Host) *arpState {
	return &arpState{
		host:    h,
		cache:   make(map[packet.IP]arpEntry),
		pending: make(map[packet.IP]*arpPending),
	}
}

// ARPStats returns resolution counters (zero value when the host uses a
// static resolver).
func (h *Host) ARPStats() ARPStats {
	if h.arp == nil {
		return ARPStats{}
	}
	return h.arp.stats
}

// lookup returns the cached MAC for ip, if fresh.
func (a *arpState) lookup(ip packet.IP) (packet.MAC, bool) {
	e, ok := a.cache[ip]
	if !ok || a.host.kernel.Now() >= e.expires {
		return packet.MAC{}, false
	}
	a.stats.CacheHits++
	return e.mac, true
}

// enqueue holds a datagram for ip and kicks off (or continues)
// resolution. Queued datagrams traverse the card's egress policy once
// the MAC resolves.
func (a *arpState) enqueue(ip packet.IP, d *packet.Datagram) {
	p := a.pending[ip]
	if p == nil {
		p = &arpPending{}
		a.pending[ip] = p
		a.sendRequest(ip)
		a.armRetry(ip)
	}
	if d == nil {
		return // resolution kicked off without queued payload
	}
	if len(p.datagrams) >= arpPendingLimit {
		a.stats.QueueOverflows++
		return
	}
	p.datagrams = append(p.datagrams, d)
}

func (a *arpState) armRetry(ip packet.IP) {
	a.host.kernel.After(arpRetryEvery, func() {
		p := a.pending[ip]
		if p == nil {
			return // resolved meanwhile
		}
		p.retries++
		if p.retries >= arpRetries {
			delete(a.pending, ip)
			a.stats.Failures++
			a.host.stats.TxNoRoute += uint64(len(p.datagrams))
			return
		}
		a.sendRequest(ip)
		a.armRetry(ip)
	})
}

func (a *arpState) sendRequest(ip packet.IP) {
	a.stats.RequestsSent++
	m := &packet.ARPMessage{
		Op:        packet.ARPRequest,
		SenderMAC: a.host.card.MAC(),
		SenderIP:  a.host.ip,
		TargetIP:  ip,
	}
	a.host.card.SendRawFrame(&packet.Frame{
		Dst:     packet.Broadcast,
		Src:     a.host.card.MAC(),
		Type:    packet.EtherTypeARP,
		Payload: m.Marshal(),
	})
}

// handleFrame processes an inbound ARP frame.
func (a *arpState) handleFrame(f *packet.Frame) {
	m, err := packet.UnmarshalARPMessage(f.Payload)
	if err != nil {
		a.host.stats.RxMalformed++
		return
	}
	// Opportunistically learn the sender's binding either way.
	a.learn(m.SenderIP, m.SenderMAC)

	switch m.Op {
	case packet.ARPRequest:
		if m.TargetIP != a.host.ip {
			return
		}
		a.stats.RepliesSent++
		reply := &packet.ARPMessage{
			Op:        packet.ARPReply,
			SenderMAC: a.host.card.MAC(),
			SenderIP:  a.host.ip,
			TargetMAC: m.SenderMAC,
			TargetIP:  m.SenderIP,
		}
		a.host.card.SendRawFrame(&packet.Frame{
			Dst:     m.SenderMAC,
			Src:     a.host.card.MAC(),
			Type:    packet.EtherTypeARP,
			Payload: reply.Marshal(),
		})
	case packet.ARPReply:
		a.stats.RepliesHeard++
	}
}

// learn records a binding and flushes any frames queued behind it.
func (a *arpState) learn(ip packet.IP, mac packet.MAC) {
	a.cache[ip] = arpEntry{mac: mac, expires: a.host.kernel.Now() + arpCacheTTL}
	p := a.pending[ip]
	if p == nil {
		return
	}
	delete(a.pending, ip)
	for _, d := range p.datagrams {
		if !a.host.card.Send(d, mac) {
			a.host.stats.TxNICRefused++
		} else {
			a.host.stats.TxDatagrams++
		}
	}
}
