package stack

import (
	"testing"
	"time"

	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// BenchmarkTCPBulkTransfer measures simulator cost per simulated MB of
// TCP transfer over a clean 100 Mbps path.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	const total = 1 << 20
	b.SetBytes(total)
	var transferTime time.Duration
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		sw := link.NewSwitch(k, link.SwitchConfig{Link: link.Config{QueueFrames: 4096}})
		macs := map[packet.IP]packet.MAC{}
		resolve := func(ip packet.IP) (packet.MAC, bool) { m, ok := macs[ip]; return m, ok }
		mk := func(name, ip string, last byte) *Host {
			addr := packet.MustIP(ip)
			mac := packet.MAC{2, 0, 0, 0, 0, last}
			macs[addr] = mac
			card := nic.New(k, mac, nic.Standard(), sw.NewPort())
			h, err := NewHost(k, Config{Name: name, IP: addr, NIC: card, Resolve: resolve, RespondToFloods: true})
			if err != nil {
				b.Fatal(err)
			}
			return h
		}
		a := mk("a", "10.0.0.1", 1)
		bb := mk("b", "10.0.0.2", 2)
		received := 0
		if _, err := bb.ListenTCP(5001, func(c *Conn) {
			c.OnData = func(p []byte) {
				received += len(p)
				if received == total {
					transferTime = k.Now()
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
		c, err := a.DialTCP(bb.IP(), 5001)
		if err != nil {
			b.Fatal(err)
		}
		sent := 0
		fill := func() {
			for c.Buffered() < 128<<10 && sent < total {
				chunk := 64 << 10
				if total-sent < chunk {
					chunk = total - sent
				}
				if err := c.Write(make([]byte, chunk)); err != nil {
					b.Fatal(err)
				}
				sent += chunk
			}
		}
		c.OnConnect = fill
		c.OnAcked = func(int) { fill() }
		if err := k.RunUntil(5 * time.Second); err != nil {
			b.Fatal(err)
		}
		if received != total {
			b.Fatalf("received %d of %d", received, total)
		}
	}
	if transferTime > 0 {
		// Goodput achieved inside the simulation — the figure the
		// bandwidth experiments measure, exported so the benchmark
		// baseline records simulated Mbps alongside simulator cost.
		b.ReportMetric(float64(total)*8/transferTime.Seconds()/1e6, "sim_Mbps")
	}
}
