package stack

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// arpNet builds hosts that resolve neighbors with ARP (no static table).
type arpNet struct {
	kernel *sim.Kernel
	sw     *link.Switch
}

func newARPNet() *arpNet {
	k := sim.NewKernel()
	return &arpNet{
		kernel: k,
		sw:     link.NewSwitch(k, link.SwitchConfig{Link: link.Config{QueueFrames: 1024}}),
	}
}

func (n *arpNet) addHost(t *testing.T, name, ip string, prof nic.Profile) *Host {
	t.Helper()
	addr := packet.MustIP(ip)
	mac := packet.MAC{2, 0, 0, 0, 1, addr[3]}
	card := nic.New(n.kernel, mac, prof, n.sw.NewPort())
	h, err := NewHost(n.kernel, Config{
		Name: name, IP: addr, NIC: card,
		RespondToFloods: true,
		// Resolve deliberately nil: ARP mode.
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestARPResolvesAndDelivers(t *testing.T) {
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	b := n.addHost(t, "b", "10.0.0.2", nic.Standard())

	sink, err := b.BindUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	sink.OnRecv = func(packet.IP, uint16, []byte) { got++ }
	sock, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sock.SendTo(b.IP(), 7000, []byte("via arp")) {
		t.Fatal("SendTo refused")
	}
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered = %d", got)
	}
	st := a.ARPStats()
	if st.RequestsSent != 1 || st.RepliesHeard != 1 {
		t.Errorf("client ARP stats = %+v", st)
	}
	if b.ARPStats().RepliesSent != 1 {
		t.Errorf("server ARP stats = %+v", b.ARPStats())
	}
}

func TestARPCacheAvoidsRepeatedRequests(t *testing.T) {
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	b := n.addHost(t, "b", "10.0.0.2", nic.Standard())
	if _, err := b.BindUDP(7000); err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sock.SendTo(b.IP(), 7000, []byte("x"))
		if err := n.kernel.RunFor(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st := a.ARPStats()
	if st.RequestsSent != 1 {
		t.Errorf("RequestsSent = %d, want 1 (cache must absorb the rest)", st.RequestsSent)
	}
	if st.CacheHits < 9 {
		t.Errorf("CacheHits = %d, want >=9", st.CacheHits)
	}
	// The opportunistic learn from b's perspective: b learned a's
	// binding from the request, so its replies needed no request of its
	// own (ICMP unreachable responses flowed without ARP).
	if b.ARPStats().RequestsSent != 0 {
		t.Errorf("server sent %d ARP requests; request should have taught it the binding",
			b.ARPStats().RequestsSent)
	}
}

func TestARPUnresolvableNeighborDropsAfterRetries(t *testing.T) {
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	sock, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(packet.MustIP("10.0.0.99"), 7000, []byte("anyone?"))
	if err := n.kernel.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := a.ARPStats()
	if st.RequestsSent != arpRetries {
		t.Errorf("RequestsSent = %d, want %d", st.RequestsSent, arpRetries)
	}
	if st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}
	if a.Stats().TxNoRoute != 1 {
		t.Errorf("TxNoRoute = %d, want 1 (queued datagram dropped)", a.Stats().TxNoRoute)
	}
}

func TestARPPassesThroughDenyAllCard(t *testing.T) {
	// The EFW filters IP, not ARP: resolution works even under deny-all,
	// though the resolved traffic is then denied.
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	b := n.addHost(t, "b", "10.0.0.2", nic.EFW())
	b.NIC().InstallRuleSet(fw.MustRuleSet(fw.Deny))

	sock, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.IP(), 7000, []byte("x"))
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if a.ARPStats().RepliesHeard != 1 {
		t.Error("ARP did not resolve through a deny-all card")
	}
	if b.NIC().Stats().RxDenied != 1 {
		t.Errorf("RxDenied = %d; the resolved datagram should be denied", b.NIC().Stats().RxDenied)
	}
}

func TestARPPendingQueueBounded(t *testing.T) {
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	sock, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sock.SendTo(packet.MustIP("10.0.0.50"), 7000, []byte("x"))
	}
	if a.ARPStats().QueueOverflows != 20-arpPendingLimit {
		t.Errorf("QueueOverflows = %d, want %d", a.ARPStats().QueueOverflows, 20-arpPendingLimit)
	}
}

func TestARPTCPEndToEnd(t *testing.T) {
	n := newARPNet()
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard())
	b := n.addHost(t, "b", "10.0.0.2", nic.Standard())
	received := 0
	if _, err := b.ListenTCP(80, func(c *Conn) {
		c.OnData = func(p []byte) { received += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() {
		if err := c.Write([]byte("over arp")); err != nil {
			t.Error(err)
		}
	}
	if err := n.kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != 8 {
		t.Errorf("received = %d bytes", received)
	}
}
