package stack

import (
	"bytes"
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/hostfw"
	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/vpg"
)

// net is a small test network: hosts on one switch with static address
// resolution.
type net struct {
	kernel *sim.Kernel
	sw     *link.Switch
	macs   map[packet.IP]packet.MAC
	hosts  map[string]*Host
}

func newNet(t *testing.T) *net {
	t.Helper()
	k := sim.NewKernel()
	return &net{
		kernel: k,
		sw:     link.NewSwitch(k, link.SwitchConfig{Link: link.Config{QueueFrames: 4096}}),
		macs:   make(map[packet.IP]packet.MAC),
		hosts:  make(map[string]*Host),
	}
}

func (n *net) addHost(t *testing.T, name string, ip string, prof nic.Profile, fwall *hostfw.Firewall) *Host {
	t.Helper()
	addr := packet.MustIP(ip)
	mac := packet.MAC{2, 0, 0, 0, 0, byte(len(n.macs) + 1)}
	n.macs[addr] = mac
	card := nic.New(n.kernel, mac, prof, n.sw.NewPort())
	h, err := NewHost(n.kernel, Config{
		Name: name, IP: addr, NIC: card,
		Resolve: func(ip packet.IP) (packet.MAC, bool) {
			m, ok := n.macs[ip]
			return m, ok
		},
		Firewall:        fwall,
		RespondToFloods: true,
	})
	if err != nil {
		t.Fatalf("NewHost(%s): %v", name, err)
	}
	n.hosts[name] = h
	return h
}

func twoHosts(t *testing.T) (*net, *Host, *Host) {
	n := newNet(t)
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard(), nil)
	b := n.addHost(t, "b", "10.0.0.2", nic.Standard(), nil)
	return n, a, b
}

func TestUDPDelivery(t *testing.T) {
	n, a, b := twoHosts(t)
	srv, err := b.BindUDP(5001)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var gotSrc packet.IP
	srv.OnRecv = func(src packet.IP, srcPort uint16, payload []byte) {
		gotSrc = src
		got = append([]byte(nil), payload...)
	}
	cli, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cli.SendTo(b.IP(), 5001, []byte("hello")) {
		t.Fatal("SendTo refused")
	}
	if err := n.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" || gotSrc != a.IP() {
		t.Errorf("got %q from %v", got, gotSrc)
	}
	if d, by := srv.Received(); d != 1 || by != 5 {
		t.Errorf("Received = %d, %d", d, by)
	}
}

func TestUDPClosedPortElicitsICMP(t *testing.T) {
	n, a, b := twoHosts(t)
	cli, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	var icmp *packet.ICMPMessage
	a.OnICMP = func(src packet.IP, m *packet.ICMPMessage) { icmp = m }
	cli.SendTo(b.IP(), 9999, []byte("anyone there?"))
	if err := n.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().UnreachSent != 1 {
		t.Error("no ICMP unreachable sent for closed port")
	}
	if icmp == nil || icmp.Type != packet.ICMPDestUnreach || icmp.Code != packet.ICMPCodePortUnreach {
		t.Errorf("client got %+v, want port unreachable", icmp)
	}
}

func TestFloodResponseSuppression(t *testing.T) {
	// With RespondToFloods disabled, closed ports stay silent (used by
	// the ablation benchmarks).
	n := newNet(t)
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard(), nil)
	bAddr := packet.MustIP("10.0.0.2")
	mac := packet.MAC{2, 0, 0, 0, 0, 42}
	n.macs[bAddr] = mac
	card := nic.New(n.kernel, mac, nic.Standard(), n.sw.NewPort())
	b, err := NewHost(n.kernel, Config{
		Name: "b", IP: bAddr, NIC: card,
		Resolve: func(ip packet.IP) (packet.MAC, bool) { m, ok := n.macs[ip]; return m, ok },
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	cli.SendTo(b.IP(), 9999, []byte("x"))
	if err := n.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().UnreachSent != 0 {
		t.Error("silent host sent ICMP")
	}
}

func TestPingEcho(t *testing.T) {
	n, a, b := twoHosts(t)
	var reply *packet.ICMPMessage
	a.OnICMP = func(src packet.IP, m *packet.ICMPMessage) {
		if m.Type == packet.ICMPEchoReply {
			reply = m
		}
	}
	a.Ping(b.IP(), 7, 1)
	if err := n.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if reply == nil || reply.ID != 7 || reply.Seq != 1 {
		t.Errorf("echo reply = %+v", reply)
	}
	if b.Stats().EchoReplies != 1 {
		t.Error("server did not count echo reply")
	}
}

func TestTCPHandshakeAndData(t *testing.T) {
	n, a, b := twoHosts(t)
	var serverGot bytes.Buffer
	_, err := b.ListenTCP(80, func(c *Conn) {
		c.OnData = func(p []byte) { serverGot.Write(p) }
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	connected := false
	c.OnConnect = func() {
		connected = true
		if err := c.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
			t.Errorf("Write: %v", err)
		}
	}
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("handshake never completed")
	}
	if serverGot.String() != "GET / HTTP/1.0\r\n\r\n" {
		t.Errorf("server got %q", serverGot.String())
	}
	if c.State() != StateEstablished {
		t.Errorf("client state %v, want ESTABLISHED", c.State())
	}
}

func TestTCPBulkTransfer(t *testing.T) {
	n, a, b := twoHosts(t)
	const total = 1 << 20 // 1 MiB
	received := 0
	_, err := b.ListenTCP(5001, func(c *Conn) {
		c.OnData = func(p []byte) { received += len(p) }
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 5001)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	fill := func() {
		for c.Buffered() < 256<<10 && sent < total {
			chunk := 64 << 10
			if total-sent < chunk {
				chunk = total - sent
			}
			if err := c.Write(make([]byte, chunk)); err != nil {
				t.Fatalf("Write: %v", err)
			}
			sent += chunk
		}
	}
	c.OnConnect = fill
	c.OnAcked = func(int) { fill() }
	if err := n.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d bytes", received, total)
	}
	if c.Stats().Retransmits != 0 {
		t.Errorf("unexpected retransmits on a clean network: %d", c.Stats().Retransmits)
	}
	// 1 MiB over 100 Mbps is ≈90 ms; it must have taken at least that.
	if n.kernel.Now() < 80*time.Millisecond {
		t.Errorf("transfer finished impossibly fast: %v", n.kernel.Now())
	}
}

func TestTCPGracefulClose(t *testing.T) {
	n, a, b := twoHosts(t)
	var serverConn *Conn
	serverPeerClosed := false
	_, err := b.ListenTCP(80, func(c *Conn) {
		serverConn = c
		c.OnPeerClose = func() {
			serverPeerClosed = true
			c.Close() // close our side too
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	clientClosed := false
	c.OnClose = func() { clientClosed = true }
	c.OnConnect = func() { c.Close() }
	if err := n.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !serverPeerClosed {
		t.Error("server never saw client FIN")
	}
	if !clientClosed {
		t.Error("client OnClose never fired")
	}
	if serverConn.State() != StateClosed {
		t.Errorf("server state %v, want CLOSED", serverConn.State())
	}
	if c.State() != StateClosed && c.State() != StateTimeWait {
		t.Errorf("client state %v, want TIME-WAIT or CLOSED", c.State())
	}
}

func TestTCPConnectToClosedPortResets(t *testing.T) {
	n, a, b := twoHosts(t)
	c, err := a.DialTCP(b.IP(), 81)
	if err != nil {
		t.Fatal(err)
	}
	reset := false
	c.OnReset = func() { reset = true }
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !reset {
		t.Error("connection to closed port was not reset")
	}
	if b.Stats().RSTsSent != 1 {
		t.Errorf("RSTsSent = %d, want 1", b.Stats().RSTsSent)
	}
	if c.State() != StateClosed {
		t.Errorf("state %v, want CLOSED", c.State())
	}
}

func TestTCPRetransmissionRecoversLoss(t *testing.T) {
	// Congest the path with a tiny link queue so some segments drop,
	// then verify the transfer still completes.
	k := sim.NewKernel()
	sw := link.NewSwitch(k, link.SwitchConfig{Link: link.Config{QueueFrames: 3}})
	macs := map[packet.IP]packet.MAC{}
	resolve := func(ip packet.IP) (packet.MAC, bool) { m, ok := macs[ip]; return m, ok }
	mk := func(name, ip string, last byte) *Host {
		addr := packet.MustIP(ip)
		mac := packet.MAC{2, 0, 0, 0, 0, last}
		macs[addr] = mac
		card := nic.New(k, mac, nic.Standard(), sw.NewPort())
		h, err := NewHost(k, Config{Name: name, IP: addr, NIC: card, Resolve: resolve, RespondToFloods: true})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a := mk("a", "10.0.0.1", 1)
	b := mk("b", "10.0.0.2", 2)

	const total = 256 << 10
	received := 0
	if _, err := b.ListenTCP(5001, func(c *Conn) {
		c.OnData = func(p []byte) { received += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 5001)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() {
		// Dump the whole payload at once: with a 3-frame switch queue
		// this overruns and drops segments.
		if err := c.Write(make([]byte, total)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d after loss", received, total)
	}
	if c.Stats().Retransmits == 0 {
		t.Error("no retransmissions despite forced loss")
	}
}

func TestTCPWriteAfterCloseFails(t *testing.T) {
	n, a, b := twoHosts(t)
	if _, err := b.ListenTCP(80, nil); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() {
		c.Close()
		if err := c.Write([]byte("x")); err == nil {
			t.Error("Write after Close succeeded")
		}
	}
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTCPAbortSendsRST(t *testing.T) {
	n, a, b := twoHosts(t)
	var serverConn *Conn
	serverReset := false
	if _, err := b.ListenTCP(80, func(c *Conn) {
		serverConn = c
		c.OnReset = func() { serverReset = true }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() { c.Abort() }
	if err := n.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if serverConn == nil {
		t.Fatal("server never accepted")
	}
	if !serverReset {
		t.Error("peer never saw the RST")
	}
	if c.State() != StateClosed {
		t.Errorf("client state %v", c.State())
	}
}

func TestHostFirewallFiltersInbound(t *testing.T) {
	n := newNet(t)
	a := n.addHost(t, "a", "10.0.0.1", nic.Standard(), nil)
	f := hostfw.New(n.kernel, hostfw.IPTables())
	f.Install(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.Both, Proto: packet.ProtoUDP, DstPorts: fw.Port(53)},
		fw.Rule{Action: fw.Allow, Direction: fw.Both, Proto: packet.ProtoUDP, SrcPorts: fw.Port(53)},
	))
	b := n.addHost(t, "b", "10.0.0.2", nic.Standard(), f)

	srvAllowed, err := b.BindUDP(53)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	srvAllowed.OnRecv = func(packet.IP, uint16, []byte) { got++ }
	srvDenied, err := b.BindUDP(54)
	if err != nil {
		t.Fatal(err)
	}
	srvDenied.OnRecv = func(packet.IP, uint16, []byte) { t.Error("denied port received data") }

	cli, err := a.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	cli.SendTo(b.IP(), 53, []byte("q"))
	cli.SendTo(b.IP(), 54, []byte("q"))
	if err := n.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("allowed port got %d datagrams, want 1", got)
	}
	if b.Stats().RxFiltered != 1 {
		t.Errorf("RxFiltered = %d, want 1", b.Stats().RxFiltered)
	}
}

func TestMSSAccountsForVPGOverhead(t *testing.T) {
	n := newNet(t)
	a := n.addHost(t, "a", "10.0.0.1", nic.ADF(), nil)
	base := packet.MaxPayload - packet.IPv4HeaderLen - packet.TCPHeaderLen
	if a.MSS() != base {
		t.Errorf("MSS without groups = %d, want %d", a.MSS(), base)
	}
	// Installing a VPG shrinks the MSS by the seal overhead.
	g := newTestGroup(t, a)
	_ = g
	if want := base - a.NIC().SealOverhead(); a.MSS() != want || a.NIC().SealOverhead() == 0 {
		t.Errorf("MSS with group = %d, want %d", a.MSS(), want)
	}
}

func newTestGroup(t *testing.T, h *Host) *vpg.Group {
	t.Helper()
	g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), h.IP(), packet.MustIP("10.0.0.99"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.NIC().InstallGroup(g, h.IP()); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEphemeralPortsExhaustion(t *testing.T) {
	n, a, _ := twoHosts(t)
	_ = n
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s, err := a.BindUDP(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Port()] {
			t.Fatalf("ephemeral port %d reused", s.Port())
		}
		seen[s.Port()] = true
	}
}

func TestBindConflicts(t *testing.T) {
	_, a, _ := twoHosts(t)
	if _, err := a.BindUDP(53); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BindUDP(53); err == nil {
		t.Error("double UDP bind succeeded")
	}
	if _, err := a.ListenTCP(80, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ListenTCP(80, nil); err == nil {
		t.Error("double TCP bind succeeded")
	}
	if _, err := a.ListenTCP(0, nil); err == nil {
		t.Error("TCP listen on port 0 succeeded")
	}
}
