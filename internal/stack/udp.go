package stack

import (
	"fmt"

	"barbican/internal/packet"
)

// UDPSocket is a bound UDP port on a host.
type UDPSocket struct {
	host *Host
	port uint16
	// OnRecv is invoked for each datagram delivered to the socket.
	OnRecv func(src packet.IP, srcPort uint16, payload []byte)

	rxDatagrams uint64
	rxBytes     uint64

	// tx is the socket's transport marshal scratch, reused when the host
	// resolves neighbors statically.
	tx []byte
}

// BindUDP binds a UDP port. Port 0 picks an ephemeral port.
func (h *Host) BindUDP(port uint16) (*UDPSocket, error) {
	if port == 0 {
		p, err := h.allocEphemeral(func(p uint16) bool {
			_, used := h.udpSocks[p]
			return used
		})
		if err != nil {
			return nil, err
		}
		port = p
	}
	if _, used := h.udpSocks[port]; used {
		return nil, fmt.Errorf("stack: %s: UDP port %d already bound", h.name, port)
	}
	s := &UDPSocket{host: h, port: port}
	h.udpSocks[port] = s
	return s, nil
}

// Port returns the bound port.
func (s *UDPSocket) Port() uint16 { return s.port }

// Received returns the datagram and byte counts delivered to the socket.
func (s *UDPSocket) Received() (datagrams, bytes uint64) {
	return s.rxDatagrams, s.rxBytes
}

// SendTo transmits one datagram. It reports whether the datagram made it
// onto the wire.
func (s *UDPSocket) SendTo(dst packet.IP, dstPort uint16, payload []byte) bool {
	u := packet.UDPDatagram{SrcPort: s.port, DstPort: dstPort, Payload: payload}
	if !s.host.StaticNeighbors() {
		return s.host.send(dst, packet.ProtoUDP, u.Marshal(s.host.ip, dst))
	}
	s.tx = u.MarshalTo(s.host.ip, dst, s.tx[:0])
	return s.host.send(dst, packet.ProtoUDP, s.tx)
}

// Close unbinds the socket.
func (s *UDPSocket) Close() {
	if s.host.udpSocks[s.port] == s {
		delete(s.host.udpSocks, s.port)
	}
}

func (s *UDPSocket) deliver(src packet.IP, srcPort uint16, payload []byte) {
	s.rxDatagrams++
	s.rxBytes += uint64(len(payload))
	if s.OnRecv != nil {
		s.OnRecv(src, srcPort, payload)
	}
}
