package stack

import "barbican/internal/obs"

// PublishMetrics registers the host's stack counters with the registry
// as collector closures; the datagram path is untouched.
func (h *Host) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	counter := func(name, help string, read func() float64) {
		reg.MustRegisterFunc(name, help, obs.KindCounter, read, labels...)
	}

	counter("stack_rx_datagrams_total", "Datagrams delivered to the stack.",
		func() float64 { return float64(h.stats.RxDatagrams) })
	counter("stack_rx_malformed_total", "Unparseable datagrams or segments.",
		func() float64 { return float64(h.stats.RxMalformed) })
	counter("stack_rx_filtered_total", "Datagrams dropped by the host firewall.",
		func() float64 { return float64(h.stats.RxFiltered) })
	counter("stack_rx_no_listener_total", "TCP segments to closed ports.",
		func() float64 { return float64(h.stats.RxNoListener) })
	counter("stack_rx_no_socket_total", "UDP datagrams to closed ports.",
		func() float64 { return float64(h.stats.RxNoSocket) })
	counter("stack_rx_fragments_total", "IP fragments received.",
		func() float64 { return float64(h.stats.RxFragments) })
	counter("stack_rx_reassembled_total", "Datagrams reassembled from fragments.",
		func() float64 { return float64(h.stats.RxReassembled) })
	counter("stack_tx_datagrams_total", "Datagrams transmitted onto the wire.",
		func() float64 { return float64(h.stats.TxDatagrams) })
	counter("stack_tx_filtered_total", "Egress datagrams dropped by the host firewall.",
		func() float64 { return float64(h.stats.TxFiltered) })
	counter("stack_tx_nic_refused_total", "Datagrams the NIC refused (deny, overload, lockup).",
		func() float64 { return float64(h.stats.TxNICRefused) })
	counter("stack_rsts_sent_total", "TCP resets sent for orphan segments.",
		func() float64 { return float64(h.stats.RSTsSent) })
	counter("stack_unreach_sent_total", "ICMP port-unreachables sent.",
		func() float64 { return float64(h.stats.UnreachSent) })
	counter("stack_echo_replies_total", "ICMP echo requests answered.",
		func() float64 { return float64(h.stats.EchoReplies) })

	reg.MustRegisterFunc("stack_tcp_conns", "Live TCP connections.",
		obs.KindGauge, func() float64 { return float64(len(h.conns)) }, labels...)
}
