// Package stack implements the simulated hosts' network stack: IP
// send/receive over a NIC, UDP sockets, a TCP state machine (handshake,
// sliding-window data transfer, retransmission, teardown, resets), and
// ICMP behaviour (echo, port unreachable).
//
// The stack is deliberately faithful where the paper's experiments depend
// on it: allowed flood packets reaching the host elicit responses (TCP
// RSTs, ICMP port unreachables) that transit the firewall card *outbound*
// and double its load — the mechanism behind the paper's finding that
// denying flood packets doubles the required flood rate.
package stack

import (
	"fmt"
	"time"

	"barbican/internal/hostfw"
	"barbican/internal/nic"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Resolver maps an IP address to the MAC address of its host. The
// simulated network is a single switched segment, so a static neighbor
// table replaces ARP.
type Resolver func(packet.IP) (packet.MAC, bool)

// Stats counts host-level stack activity.
type Stats struct {
	RxDatagrams   uint64
	RxWrongDst    uint64
	RxMalformed   uint64
	RxFiltered    uint64 // dropped by the host firewall
	RxNoListener  uint64 // TCP to a closed port (RST sent)
	RxNoSocket    uint64 // UDP to a closed port (ICMP sent)
	RxFragments   uint64
	RxReassembled uint64
	TxDatagrams   uint64
	TxFiltered    uint64
	TxNoRoute     uint64
	TxNICRefused  uint64
	RSTsSent      uint64
	UnreachSent   uint64
	EchoReplies   uint64
	ICMPReceived  uint64
}

// Config configures a host.
type Config struct {
	// Name labels the host in logs.
	Name string
	// IP is the host address.
	IP packet.IP
	// NIC is the host's (possibly filtering) network card.
	NIC *nic.NIC
	// Resolve maps destination IPs to MACs. Nil enables ARP: the host
	// resolves neighbors over the wire, queueing datagrams meanwhile.
	Resolve Resolver
	// Firewall optionally filters traffic in the host (the iptables
	// baseline). Nil means no host filtering.
	Firewall *hostfw.Firewall
	// RespondToFloods controls whether the host emits RST/ICMP responses
	// to packets for closed ports. True matches real stacks (and the
	// paper's testbed); the ablation benchmarks disable it.
	RespondToFloods bool
}

type connKey struct {
	remote     packet.IP
	remotePort uint16
	localPort  uint16
}

// Host is a simulated end host.
type Host struct {
	kernel  *sim.Kernel
	name    string
	ip      packet.IP
	card    *nic.NIC
	fwall   *hostfw.Firewall
	resolve Resolver
	respond bool

	udpSocks  map[uint16]*UDPSocket
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn

	ipID      uint16
	ephemeral uint16
	reasm     *packet.Reassembler
	arp       *arpState

	// txScratch and txDatagram are reused across sends when the host
	// resolves neighbors statically (see StaticNeighbors); with ARP a
	// datagram may be queued past the send call, so fresh buffers are
	// allocated instead.
	txScratch  []byte
	txDatagram packet.Datagram

	// OnICMP, when set, observes ICMP messages addressed to this host
	// (other than echo requests, which are answered automatically).
	OnICMP func(src packet.IP, msg *packet.ICMPMessage)

	// tracer records lifecycle events for frames carrying a sampled
	// trace ID; rxTraceID holds the ID of the datagram currently in
	// receive() so the per-protocol handlers (which only see the
	// datagram) can finish the trace. Single simulation goroutine, so
	// the transient field is race-free.
	tracer    *tracing.Tracer
	rxTraceID uint64

	stats Stats
}

// NewHost creates a host bound to its NIC.
func NewHost(k *sim.Kernel, cfg Config) (*Host, error) {
	if cfg.NIC == nil {
		return nil, fmt.Errorf("stack: host %q has no NIC", cfg.Name)
	}
	h := &Host{
		kernel:    k,
		name:      cfg.Name,
		ip:        cfg.IP,
		card:      cfg.NIC,
		fwall:     cfg.Firewall,
		resolve:   cfg.Resolve,
		respond:   cfg.RespondToFloods,
		udpSocks:  make(map[uint16]*UDPSocket),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		ephemeral: 32768,
		reasm:     packet.NewReassembler(0, 0),
	}
	if cfg.Resolve == nil {
		h.arp = newARPState(h)
	}
	cfg.NIC.SetDeliver(h.receive)
	return h, nil
}

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() packet.IP { return h.ip }

// NIC returns the host's card.
func (h *Host) NIC() *nic.NIC { return h.card }

// Firewall returns the host firewall (nil if none).
func (h *Host) Firewall() *hostfw.Firewall { return h.fwall }

// Stats returns a snapshot of the stack counters.
func (h *Host) Stats() Stats { return h.stats }

// SetTracer attaches (or with nil detaches) a packet-lifecycle
// tracer: sampled datagrams record stack dispatch and app delivery.
func (h *Host) SetTracer(tr *tracing.Tracer) { h.tracer = tr }

// traceFinish terminates the trace of the datagram currently being
// received, if any, with an app-level disposition note.
func (h *Host) traceFinish(note string) {
	if h.tracer != nil && h.rxTraceID != 0 {
		h.tracer.Finish(h.rxTraceID, tracing.StageApp, note)
	}
}

// traceDrop terminates the current datagram's trace as a stack-level
// drop.
func (h *Host) traceDrop(st tracing.Stage, r tracing.DropReason) {
	if h.tracer != nil && h.rxTraceID != 0 {
		h.tracer.Drop(h.rxTraceID, st, r)
	}
}

// Kernel returns the simulation kernel the host runs on.
func (h *Host) Kernel() *sim.Kernel { return h.kernel }

// MSS returns the TCP maximum segment size on this host's path,
// accounting for VPG sealing overhead on its card.
func (h *Host) MSS() int {
	return packet.MaxPayload - packet.IPv4HeaderLen - packet.TCPHeaderLen - h.card.SealOverhead()
}

// MaxUDPPayload returns the largest UDP payload that fits in one frame,
// accounting for VPG sealing overhead on this host's card.
func (h *Host) MaxUDPPayload() int {
	return packet.MaxPayload - packet.IPv4HeaderLen - packet.UDPHeaderLen - h.card.SealOverhead()
}

// StaticNeighbors reports whether the host resolves neighbor MACs from
// a static table. When true the NIC consumes every transmitted datagram
// synchronously (nothing ever queues behind ARP), so transport marshal
// buffers may be reused across sends.
func (h *Host) StaticNeighbors() bool { return h.resolve != nil }

// scratch returns the host's reusable transport marshal buffer, emptied,
// or nil — forcing a fresh allocation — when a pending ARP resolution
// could retain the marshaled bytes past the send call.
func (h *Host) scratch() []byte {
	if h.resolve == nil {
		return nil
	}
	return h.txScratch[:0]
}

// receive is the NIC's delivery callback.
func (h *Host) receive(f *packet.Frame) {
	if f.Type == packet.EtherTypeARP {
		if h.arp != nil {
			h.arp.handleFrame(f)
		}
		return
	}
	if h.tracer != nil {
		h.rxTraceID = f.TraceID
	}
	d, err := packet.UnmarshalDatagram(f.Payload)
	if err != nil {
		h.stats.RxMalformed++
		h.traceDrop(tracing.StageStack, tracing.DropMalformed)
		return
	}
	if d.Header.Dst != h.ip {
		h.stats.RxWrongDst++
		h.traceFinish("stack: wrong destination")
		return
	}
	if h.fwall != nil {
		s, err := packet.SummarizeIPv4(f.Payload)
		if err != nil {
			h.stats.RxMalformed++
			h.traceDrop(tracing.StageStack, tracing.DropMalformed)
			return
		}
		if !h.fwall.FilterIn(s) {
			h.stats.RxFiltered++
			h.traceDrop(tracing.StageStack, tracing.DropRuleDeny)
			return
		}
	}
	if d.Header.IsFragment() {
		h.stats.RxFragments++
		whole := h.reasm.Add(d)
		if whole == nil {
			if h.tracer != nil && h.rxTraceID != 0 {
				h.tracer.Point(h.rxTraceID, tracing.StageStack, "fragment held for reassembly")
			}
			return // incomplete; the reassembler holds (or dropped) it
		}
		h.stats.RxReassembled++
		if h.tracer != nil && h.rxTraceID != 0 {
			h.tracer.Point(h.rxTraceID, tracing.StageStack, "reassembled")
		}
		d = whole
	}
	h.stats.RxDatagrams++
	switch d.Header.Protocol {
	case packet.ProtoUDP:
		h.receiveUDP(d)
	case packet.ProtoTCP:
		h.receiveTCP(d)
	case packet.ProtoICMP:
		h.receiveICMP(d)
	default:
		// Unknown protocols are dropped silently, as Linux does without
		// a raw socket listener.
	}
}

func (h *Host) receiveUDP(d *packet.Datagram) {
	u, err := packet.UnmarshalUDPDatagram(d.Header.Src, d.Header.Dst, d.Payload)
	if err != nil {
		h.stats.RxMalformed++
		h.traceDrop(tracing.StageStack, tracing.DropMalformed)
		return
	}
	sock, ok := h.udpSocks[u.DstPort]
	if !ok {
		h.stats.RxNoSocket++
		if h.respond {
			h.traceFinish("udp: closed port, icmp port-unreachable sent")
			h.sendPortUnreachable(d.Header.Src)
		} else {
			h.traceFinish("udp: closed port, silently dropped")
		}
		return
	}
	h.traceFinish("udp: delivered to socket")
	sock.deliver(d.Header.Src, u.SrcPort, u.Payload)
}

func (h *Host) receiveTCP(d *packet.Datagram) {
	seg, err := packet.UnmarshalTCPSegment(d.Header.Src, d.Header.Dst, d.Payload)
	if err != nil {
		h.stats.RxMalformed++
		h.traceDrop(tracing.StageStack, tracing.DropMalformed)
		return
	}
	key := connKey{remote: d.Header.Src, remotePort: seg.SrcPort, localPort: seg.DstPort}
	if c, ok := h.conns[key]; ok {
		h.traceFinish("tcp: delivered to connection")
		c.input(seg)
		return
	}
	if l, ok := h.listeners[seg.DstPort]; ok && seg.Flags.Has(packet.FlagSYN) && !seg.Flags.Has(packet.FlagACK) {
		h.traceFinish("tcp: syn accepted by listener")
		l.accept(d.Header.Src, seg)
		return
	}
	h.stats.RxNoListener++
	if seg.Flags.Has(packet.FlagRST) {
		h.traceFinish("tcp: orphan rst ignored")
		return // never respond to a RST with a RST
	}
	if h.respond {
		h.traceFinish("tcp: no listener, rst sent")
		h.sendRSTFor(d.Header.Src, seg)
	} else {
		h.traceFinish("tcp: no listener, silently dropped")
	}
}

func (h *Host) receiveICMP(d *packet.Datagram) {
	m, err := packet.UnmarshalICMPMessage(d.Payload)
	if err != nil {
		h.stats.RxMalformed++
		h.traceDrop(tracing.StageStack, tracing.DropMalformed)
		return
	}
	if m.Type == packet.ICMPEchoRequest {
		h.stats.EchoReplies++
		h.traceFinish("icmp: echo request, reply sent")
		reply := &packet.ICMPMessage{Type: packet.ICMPEchoReply, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
		h.txScratch = reply.MarshalTo(h.scratch())
		h.send(d.Header.Src, packet.ProtoICMP, h.txScratch)
		return
	}
	h.stats.ICMPReceived++
	h.traceFinish("icmp: delivered")
	if h.OnICMP != nil {
		h.OnICMP(d.Header.Src, m)
	}
}

// sendRSTFor answers an orphan TCP segment with a reset, per RFC 793.
func (h *Host) sendRSTFor(src packet.IP, seg *packet.TCPSegment) {
	h.stats.RSTsSent++
	rst := &packet.TCPSegment{SrcPort: seg.DstPort, DstPort: seg.SrcPort}
	if seg.Flags.Has(packet.FlagACK) {
		rst.Flags = packet.FlagRST
		rst.Seq = seg.Ack
	} else {
		rst.Flags = packet.FlagRST | packet.FlagACK
		ack := seg.Seq + uint32(len(seg.Payload))
		if seg.Flags.Has(packet.FlagSYN) {
			ack++
		}
		rst.Ack = ack
	}
	h.txScratch = rst.MarshalTo(h.ip, src, h.scratch())
	h.send(src, packet.ProtoTCP, h.txScratch)
}

func (h *Host) sendPortUnreachable(dst packet.IP) {
	h.stats.UnreachSent++
	m := &packet.ICMPMessage{Type: packet.ICMPDestUnreach, Code: packet.ICMPCodePortUnreach}
	h.txScratch = m.MarshalTo(h.scratch())
	h.send(dst, packet.ProtoICMP, h.txScratch)
}

// send builds and transmits one IP datagram. It reports whether the
// datagram made it onto the wire.
func (h *Host) send(dst packet.IP, proto packet.Protocol, transport []byte) bool {
	h.ipID++
	var d *packet.Datagram
	if h.resolve != nil {
		// The NIC consumes the datagram synchronously, so the host-level
		// scratch datagram is safe to reuse across sends.
		h.txDatagram = *packet.NewDatagram(h.ip, dst, proto, h.ipID, transport)
		d = &h.txDatagram
	} else {
		d = packet.NewDatagram(h.ip, dst, proto, h.ipID, transport)
	}
	if h.fwall != nil {
		s, err := packet.SummarizeDatagram(d)
		if err == nil && !h.fwall.FilterOut(s) {
			h.stats.TxFiltered++
			return false
		}
	}
	mac, ok, queued := h.resolveMAC(dst, d)
	if queued {
		return true // pending ARP; transmitted (and counted) on resolve
	}
	if !ok {
		h.stats.TxNoRoute++
		return false
	}
	if !h.card.Send(d, mac) {
		h.stats.TxNICRefused++
		return false
	}
	h.stats.TxDatagrams++
	return true
}

// resolveMAC maps a destination to a MAC via the static resolver or ARP.
// queued reports that the datagram was taken over by a pending ARP
// resolution and will transmit when (if) the neighbor answers.
func (h *Host) resolveMAC(dst packet.IP, d *packet.Datagram) (mac packet.MAC, ok, queued bool) {
	if h.resolve != nil {
		mac, ok = h.resolve(dst)
		return mac, ok, false
	}
	if mac, ok := h.arp.lookup(dst); ok {
		return mac, true, false
	}
	h.arp.enqueue(dst, d)
	return packet.MAC{}, false, true
}

// InjectDatagram transmits a raw datagram as attacker tooling would via a
// raw socket: the source address may be spoofed and the host firewall is
// bypassed. The destination MAC is resolved from the datagram's
// destination address; delivery still traverses this host's NIC egress
// path (its firewall card, if any, still sees the packet).
func (h *Host) InjectDatagram(d *packet.Datagram) bool {
	mac, ok, queued := h.resolveMAC(d.Header.Dst, d)
	if queued {
		return true
	}
	if !ok {
		h.stats.TxNoRoute++
		return false
	}
	if !h.card.Send(d, mac) {
		h.stats.TxNICRefused++
		return false
	}
	h.stats.TxDatagrams++
	return true
}

// InjectSealed transmits a raw datagram framed as VPG-sealed traffic
// (EtherTypeVPG), as an attacker replaying or forging envelopes would.
// Like InjectDatagram it bypasses the host firewall but still traverses
// this host's NIC.
func (h *Host) InjectSealed(d *packet.Datagram) bool {
	mac, ok, queued := h.resolveMAC(d.Header.Dst, nil)
	if queued {
		return false // sealed injection does not queue behind ARP
	}
	if !ok {
		h.stats.TxNoRoute++
		return false
	}
	f := &packet.Frame{Dst: mac, Src: h.card.MAC(), Type: packet.EtherTypeVPG, Payload: d.Marshal()}
	// Hand the frame to the card's egress link directly: raw injection
	// models an attacker NIC that is not itself a filtering card.
	if !h.card.SendRawFrame(f) {
		h.stats.TxNICRefused++
		return false
	}
	h.stats.TxDatagrams++
	return true
}

// Ping sends an ICMP echo request.
func (h *Host) Ping(dst packet.IP, id, seq uint16) bool {
	m := &packet.ICMPMessage{Type: packet.ICMPEchoRequest, ID: id, Seq: seq}
	h.txScratch = m.MarshalTo(h.scratch())
	return h.send(dst, packet.ProtoICMP, h.txScratch)
}

// allocEphemeral returns the next free ephemeral port for the given test.
func (h *Host) allocEphemeral(inUse func(uint16) bool) (uint16, error) {
	for i := 0; i < 28232; i++ {
		p := h.ephemeral
		h.ephemeral++
		if h.ephemeral == 0 {
			h.ephemeral = 32768
		}
		if !inUse(p) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("stack: host %q is out of ephemeral ports", h.name)
}

// timeWaitDuration is the TIME-WAIT linger before a connection's state is
// reclaimed (2×MSL collapsed for simulation practicality).
const timeWaitDuration = 500 * time.Millisecond
