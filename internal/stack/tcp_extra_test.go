package stack

import (
	"bytes"
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/vpg"
)

func TestTCPSimultaneousClose(t *testing.T) {
	n, a, b := twoHosts(t)
	var serverConn *Conn
	if _, err := b.ListenTCP(80, func(c *Conn) { serverConn = c }); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	clientClosed, serverClosed := false, false
	c.OnClose = func() { clientClosed = true }
	c.OnConnect = func() {
		// The server's accept callback runs when the final handshake ACK
		// lands; schedule the crossing FINs shortly after.
		n.kernel.After(10*time.Millisecond, func() {
			serverConn.OnClose = func() { serverClosed = true }
			c.Close()
			serverConn.Close()
		})
	}
	if err := n.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !clientClosed || !serverClosed {
		t.Errorf("simultaneous close: client=%v server=%v", clientClosed, serverClosed)
	}
	if st := c.State(); st != StateClosed && st != StateTimeWait {
		t.Errorf("client state %v", st)
	}
}

func TestTCPHalfClose(t *testing.T) {
	// Client closes its send side; server keeps sending afterwards.
	n, a, b := twoHosts(t)
	var serverConn *Conn
	if _, err := b.ListenTCP(80, func(c *Conn) {
		serverConn = c
		c.OnPeerClose = func() {
			// Respond after the client's FIN, then close.
			if err := c.Write([]byte("late response")); err != nil {
				t.Errorf("server write after peer close: %v", err)
			}
			c.Close()
		}
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	c.OnData = func(p []byte) { got.Write(p) }
	closed := false
	c.OnClose = func() { closed = true }
	c.OnConnect = func() { c.Close() }
	if err := n.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got.String() != "late response" {
		t.Errorf("half-close data = %q", got.String())
	}
	if !closed {
		t.Error("client never fully closed")
	}
	if serverConn.State() != StateClosed {
		t.Errorf("server state %v", serverConn.State())
	}
}

func TestTCPTimeWaitReclaimed(t *testing.T) {
	n, a, b := twoHosts(t)
	if _, err := b.ListenTCP(80, func(c *Conn) {
		c.OnPeerClose = func() { c.Close() }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() { c.Close() }
	if err := n.kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateTimeWait {
		t.Fatalf("state before reclaim = %v, want TIME-WAIT", c.State())
	}
	if len(a.conns) != 1 {
		t.Fatalf("conns = %d, want 1 (TIME-WAIT held)", len(a.conns))
	}
	if err := n.kernel.RunUntil(100*time.Millisecond + 2*timeWaitDuration); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateClosed {
		t.Errorf("state after reclaim = %v", c.State())
	}
	if len(a.conns) != 0 {
		t.Errorf("conns = %d after TIME-WAIT reclaim", len(a.conns))
	}
}

func TestTCPOutOfOrderReassembly(t *testing.T) {
	// Inject segments directly out of order; the receiver must buffer
	// and deliver in order.
	n, a, b := twoHosts(t)
	_ = n
	var serverConn *Conn
	var got bytes.Buffer
	if _, err := b.ListenTCP(80, func(c *Conn) {
		serverConn = c
		c.OnData = func(p []byte) { got.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if serverConn == nil {
		t.Fatal("no server conn")
	}

	// Feed the server segments 2,3,1 by hand.
	base := serverConn.rcvNxt
	seg := func(off uint32, payload string) *packet.TCPSegment {
		return &packet.TCPSegment{
			SrcPort: c.LocalPort(), DstPort: 80,
			Seq: base + off, Ack: 0, Flags: packet.FlagACK,
			Window: 65535, Payload: []byte(payload),
		}
	}
	serverConn.input(seg(3, "DEF"))
	serverConn.input(seg(6, "GHI"))
	if got.Len() != 0 {
		t.Fatalf("out-of-order data delivered early: %q", got.String())
	}
	serverConn.input(seg(0, "ABC"))
	if got.String() != "ABCDEFGHI" {
		t.Errorf("reassembled = %q, want ABCDEFGHI", got.String())
	}
	if serverConn.Stats().DupAcksSent != 2 {
		t.Errorf("DupAcksSent = %d, want 2", serverConn.Stats().DupAcksSent)
	}
}

func TestTCPDuplicateDataReacked(t *testing.T) {
	n, a, b := twoHosts(t)
	var serverConn *Conn
	received := 0
	if _, err := b.ListenTCP(80, func(c *Conn) {
		serverConn = c
		c.OnData = func(p []byte) { received += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	base := serverConn.rcvNxt
	s := &packet.TCPSegment{
		SrcPort: c.LocalPort(), DstPort: 80,
		Seq: base, Flags: packet.FlagACK, Window: 65535, Payload: []byte("dup"),
	}
	serverConn.input(s)
	serverConn.input(s) // exact duplicate: must be re-acked, not re-delivered
	if received != 3 {
		t.Errorf("received %d bytes, want 3 (no duplicate delivery)", received)
	}
}

func TestTCPThroughputThroughFilteringCard(t *testing.T) {
	// End-to-end: a deep rule-set on an EFW card caps TCP goodput near
	// the card's calibrated service rate.
	k := newNet(t)
	a := k.addHost(t, "a", "10.0.0.1", nic.Standard(), nil)
	b := k.addHost(t, "b", "10.0.0.2", nic.EFW(), nil)
	rs, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	b.NIC().InstallRuleSet(rs)

	received := 0
	if _, err := b.ListenTCP(5001, func(c *Conn) {
		c.OnData = func(p []byte) { received += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 5001)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	const window = 2 * time.Second
	fill := func() {
		for c.Buffered() < 128<<10 && k.kernel.Now() < window {
			if err := c.Write(make([]byte, 64<<10)); err != nil {
				return
			}
			sent += 64 << 10
		}
	}
	c.OnConnect = fill
	c.OnAcked = func(int) { fill() }
	if err := k.kernel.RunUntil(window); err != nil {
		t.Fatal(err)
	}
	mbps := float64(received) * 8 / window.Seconds() / 1e6
	if mbps < 40 || mbps > 60 {
		t.Errorf("goodput through 64-rule EFW = %.1f Mbps, want ≈50", mbps)
	}
}

func TestVPGTCPEndToEnd(t *testing.T) {
	// TCP through sealing cards: MSS shrinks, data flows, wire is sealed.
	k := newNet(t)
	a := k.addHost(t, "a", "10.0.0.1", nic.ADF(), nil)
	b := k.addHost(t, "b", "10.0.0.2", nic.ADF(), nil)
	g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), a.IP(), b.IP())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.NIC().InstallGroup(g, a.IP()); err != nil {
		t.Fatal(err)
	}
	if err := b.NIC().InstallGroup(g, b.IP()); err != nil {
		t.Fatal(err)
	}
	prefix := packet.MustPrefix("10.0.0.0/24")
	a.NIC().InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", a.IP(), prefix)...))
	b.NIC().InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", b.IP(), prefix)...))

	const total = 256 << 10
	received := 0
	if _, err := b.ListenTCP(5001, func(c *Conn) {
		c.OnData = func(p []byte) { received += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	c, err := a.DialTCP(b.IP(), 5001)
	if err != nil {
		t.Fatal(err)
	}
	if c.MSS() >= packet.MaxPayload-packet.IPv4HeaderLen-packet.TCPHeaderLen {
		t.Errorf("MSS %d not reduced for VPG overhead", c.MSS())
	}
	c.OnConnect = func() {
		if err := c.Write(make([]byte, total)); err != nil {
			t.Error(err)
		}
	}
	if err := k.kernel.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d through VPG", received, total)
	}
	if a.NIC().Stats().Sealed == 0 || b.NIC().Stats().Opened == 0 {
		t.Error("traffic did not transit the VPG")
	}
}

func TestSpoofedInjectionBypassesLocalFirewallOnly(t *testing.T) {
	// InjectDatagram skips the attacker's host firewall but the frame
	// still crosses the victim's defenses.
	nw := newNet(t)
	a := nw.addHost(t, "attacker", "10.0.0.66", nic.Standard(), nil)
	b := nw.addHost(t, "victim", "10.0.0.2", nic.EFW(), nil)
	b.NIC().InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Deny, Direction: fw.In, Src: packet.MustPrefix("10.0.0.66/32"), Name: "block-attacker"},
		fw.AllowAllRule(),
	))
	sink, err := b.BindUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sink.OnRecv = func(packet.IP, uint16, []byte) { delivered++ }

	// Own address: denied by the victim's rule 1.
	own := &packet.UDPDatagram{SrcPort: 1, DstPort: 7000, Payload: []byte("x")}
	a.InjectDatagram(packet.NewDatagram(a.IP(), b.IP(), packet.ProtoUDP, 1, own.Marshal(a.IP(), b.IP())))
	// Spoofed as the trusted client: slips past the block.
	spoofIP := packet.MustIP("10.0.0.1")
	sp := &packet.UDPDatagram{SrcPort: 1, DstPort: 7000, Payload: []byte("x")}
	a.InjectDatagram(packet.NewDatagram(spoofIP, b.IP(), packet.ProtoUDP, 2, sp.Marshal(spoofIP, b.IP())))

	if err := nw.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (spoofed packet only)", delivered)
	}
	if b.NIC().Stats().RxDenied != 1 {
		t.Errorf("RxDenied = %d, want 1", b.NIC().Stats().RxDenied)
	}
}

func TestSYNFloodFillsListenerBacklog(t *testing.T) {
	nw := newNet(t)
	atk := nw.addHost(t, "attacker", "10.0.0.66", nic.Standard(), nil)
	srv := nw.addHost(t, "server", "10.0.0.2", nic.Standard(), nil)
	listener, err := srv.ListenTCP(80, nil)
	if err != nil {
		t.Fatal(err)
	}
	listener.SetBacklog(16)

	// Spoofed SYNs from addresses that do not exist: SYN-ACKs go
	// nowhere, so half-open slots are held until retransmission gives
	// up.
	for i := 0; i < 64; i++ {
		src := packet.IP{192, 0, 2, byte(i + 1)}
		seg := &packet.TCPSegment{SrcPort: 1000 + uint16(i), DstPort: 80, Seq: uint32(i), Flags: packet.FlagSYN, Window: 65535}
		d := packet.NewDatagram(src, srv.IP(), packet.ProtoTCP, uint16(i), seg.Marshal(src, srv.IP()))
		atk.InjectDatagram(d)
	}
	if err := nw.kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if listener.HalfOpen() != 16 {
		t.Errorf("half-open = %d, want backlog cap 16", listener.HalfOpen())
	}
	if listener.SYNDrops() != 48 {
		t.Errorf("SYN drops = %d, want 48", listener.SYNDrops())
	}

	// A legitimate client cannot get in while the backlog is full...
	c, err := nw.hosts["attacker"].DialTCP(srv.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	connected := false
	c.OnConnect = func() { connected = true }
	if err := nw.kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if connected {
		t.Error("handshake completed through a full SYN backlog")
	}

	// ...but slots free once the half-open connections give up (the
	// first client abandons its own SYN retransmissions in roughly the
	// same window), and a fresh connection then succeeds.
	if err := nw.kernel.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if listener.HalfOpen() != 0 {
		t.Errorf("half-open = %d after RTO exhaustion", listener.HalfOpen())
	}
	c2, err := nw.hosts["attacker"].DialTCP(srv.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	connected2 := false
	c2.OnConnect = func() { connected2 = true }
	if err := nw.kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if !connected2 {
		t.Error("fresh client could not connect after the backlog drained")
	}
}
