package experiment

import (
	"fmt"
	"sync"
	"time"

	"barbican/internal/obs"
)

// Accounting accumulates executor-level cost accounting across every
// simulation an experiment run performs: how many measurement points
// ran, how much virtual time they simulated, and how much wall clock
// their kernels burned. Points report from concurrent workers, so the
// accumulator is mutex-guarded — it is the only state experiment points
// share.
type Accounting struct {
	mu         sync.Mutex
	points     int
	simSeconds float64
	wallBusy   time.Duration
}

// Add records points completed measurement points that together
// simulated simSeconds of virtual time over wallBusy of kernel wall
// clock.
func (a *Accounting) Add(points int, simSeconds float64, wallBusy time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.points += points
	a.simSeconds += simSeconds
	a.wallBusy += wallBusy
	a.mu.Unlock()
}

// Totals returns the accumulated counters.
func (a *Accounting) Totals() (points int, simSeconds float64, wallBusy time.Duration) {
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.points, a.simSeconds, a.wallBusy
}

// Summary renders the executor's one-line accounting for an experiment
// run that took elapsed wall clock with the given worker count:
// aggregate wall time, point count, total virtual time simulated,
// sim-seconds-per-wall-second, and the per-point speedup (virtual
// seconds simulated per second of kernel wall time — how much faster
// than real time each point ran on average).
func (a *Accounting) Summary(elapsed time.Duration, workers int) string {
	points, simSecs, busy := a.Totals()
	line := fmt.Sprintf("(completed in %v wall clock", elapsed.Round(time.Millisecond))
	if points > 0 {
		line += fmt.Sprintf("; %d points, %.1f sim-s", points, simSecs)
		if elapsed > 0 {
			line += fmt.Sprintf(", %.1f sim-s/wall-s", simSecs/elapsed.Seconds())
		}
		if busy > 0 {
			line += fmt.Sprintf(", %.1fx realtime per point", simSecs/busy.Seconds())
		}
		line += fmt.Sprintf(", parallel=%d", workers)
	}
	return line + ")"
}

// Publish registers the run's accounting on reg so it exports alongside
// the rest of the telemetry artifacts.
func (a *Accounting) Publish(reg *obs.Registry, elapsed time.Duration, workers int) {
	points, simSecs, busy := a.Totals()
	reg.MustRegisterFunc("executor_points_total",
		"Measurement points the experiment executor completed.",
		obs.KindCounter, func() float64 { return float64(points) })
	reg.MustRegisterFunc("executor_sim_seconds_total",
		"Virtual seconds simulated across all points.",
		obs.KindCounter, func() float64 { return simSecs })
	reg.MustRegisterFunc("executor_wall_busy_seconds_total",
		"Kernel wall-clock seconds spent stepping events across all points.",
		obs.KindCounter, func() float64 { return busy.Seconds() })
	reg.MustRegisterFunc("executor_wall_elapsed_seconds",
		"End-to-end wall-clock duration of the experiment run.",
		obs.KindGauge, func() float64 { return elapsed.Seconds() })
	reg.MustRegisterFunc("executor_workers",
		"Worker-pool size the run executed with.",
		obs.KindGauge, func() float64 { return float64(workers) })
	if elapsed > 0 {
		reg.MustRegisterFunc("executor_sim_seconds_per_wall_second",
			"Aggregate simulation throughput: virtual seconds per elapsed wall second.",
			obs.KindGauge, func() float64 { return simSecs / elapsed.Seconds() })
	}
}
