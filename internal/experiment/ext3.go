package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// ExtensionFragmentEvasion (EXT3) probes the stateless filter's classic
// blind spot (RFC 1858): later IP fragments carry no transport header,
// so the paper's "deny the flood early" mitigation — which doubled the
// required flood rate in Figure 3(b) — only ever stops the *first*
// fragment of each flood packet. The table compares minimum DoS flood
// rates with the flood allowed, denied, and denied-but-fragmented. The
// three searches are independent (different flood classes, so no
// warm-start chain applies) and run concurrently on the executor.
func ExtensionFragmentEvasion(cfg Config) (*Table, error) {
	device := core.DeviceADF // the deny series the paper could measure
	const depth = 64

	cases := []struct {
		label             string
		allowed, fragment bool
	}{
		{label: "allowed by policy", allowed: true},
		{label: "denied by rule 64", allowed: false},
		{label: "denied + fragmented", allowed: false, fragment: true},
	}

	rows, err := runner.Map(cfg.pool(), len(cases), func(i int) ([]string, error) {
		tc := cases[i]
		r, err := core.MinFloodRate(core.Scenario{
			Device: device, Depth: depth,
			FloodAllowed: tc.allowed, FloodFragmented: tc.fragment,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		cfg.account(r.Probes, r.SimSeconds, r.WallBusy)
		rate := fmt.Sprintf("%.0f", r.RatePPS)
		if !r.Found {
			rate = fmt.Sprintf("none up to %d", core.MaxSearchRatePPS)
		}
		frames := "1 frame/packet"
		if tc.fragment {
			frames = "2 frames/packet"
		}
		return []string{tc.label, rate, frames}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   fmt.Sprintf("Extension EXT3: fragment evasion of early deny rules (%v, %d rules)", device, depth),
		Columns: []string{"Flood class", "Min DoS rate (packets/s)", "Wire cost"},
		Rows:    rows,
	}, nil
}
