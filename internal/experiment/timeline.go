package experiment

import (
	"fmt"
	"path/filepath"

	"barbican/internal/core"
	"barbican/internal/obs"
	"barbican/internal/obs/tracing"
	"barbican/internal/runner"
)

// FloodTimelineRate is the flood rate of the timeline experiment — the
// paper's maximum Figure 3(a) rate, at which every filtering card's
// available bandwidth collapsed to zero.
const FloodTimelineRate = 12500

// FloodTimeline renders Figure 3(a)'s central finding as a time series
// instead of a single endpoint scalar: available bandwidth is measured
// continuously while a 12,500 packets/s flood switches on mid-run (and,
// for the quick variant, off again before the end). The instantaneous
// goodput and target-card drop-rate series come straight from the
// flight recorder; with Config.MetricsDir set the full per-run
// telemetry is written alongside. Each device's run is one executor
// task (every run owns a private kernel and recorder, and artifact
// files are named per device, so tasks never contend).
func FloodTimeline(cfg Config) (*Figure, error) {
	duration := 4 * cfg.bandwidthDuration()
	floodStart := duration / 4
	floodStop := 3 * duration / 4

	fig := &Figure{
		Title: fmt.Sprintf("Flood timeline: goodput during a %d pps flood (on at %.1fs, off at %.1fs)",
			FloodTimelineRate, floodStart.Seconds(), floodStop.Seconds()),
		XLabel: "time (s)",
		YLabel: "goodput (Mbps) / drops (kpps)",
	}

	devices := []core.Device{core.DeviceStandard, core.DeviceADF}
	if !cfg.Quick {
		devices = []core.Device{core.DeviceStandard, core.DeviceIPTables, core.DeviceEFW, core.DeviceADF}
	}

	groups, err := runner.Map(cfg.pool(), len(devices), func(di int) ([]Series, error) {
		dev := devices[di]
		depth := 1
		if dev == core.DeviceStandard {
			depth = 0
		}
		s := core.Scenario{
			Device: dev, Depth: depth,
			FloodRatePPS: FloodTimelineRate, FloodAllowed: true,
			Duration: duration, Seed: cfg.Seed,
		}
		p, inst, err := core.RunFloodTimeline(s, core.TimelineOptions{
			SampleEvery: cfg.SampleEvery,
			FloodStart:  floodStart,
			FloodStop:   floodStop,
			Trace:       cfg.traceOptions(),
		})
		if err != nil {
			return nil, fmt.Errorf("timeline %v: %w", dev, err)
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)

		goodput := Series{Label: dev.String() + " Mbps"}
		if sd, ok := inst.Recorder.Series(`iperf_rx_bytes_total{proto="tcp"}`); ok {
			for _, pt := range sd.Rate() {
				goodput.Points = append(goodput.Points, Point{
					X: roundTo(pt.T.Seconds(), 3),
					Y: pt.V * 8 / 1e6,
				})
			}
		}
		out := []Series{goodput}
		// One drop-rate series per drop reason the target actually hit,
		// so the collapse window shows *why* packets died (the paper's
		// Fig 3a regime is cpu-exhausted; rule-deny floods differ).
		for _, r := range tracing.DropReasons() {
			id := fmt.Sprintf(`nic_drops_total{dir="rx",host="target",reason=%q}`, r.String())
			sd, ok := inst.Recorder.Series(id)
			if !ok {
				continue
			}
			drops := Series{Label: fmt.Sprintf("%s drops %s", dev, r)}
			nonzero := false
			for _, pt := range sd.Rate() {
				if pt.V != 0 {
					nonzero = true
				}
				drops.Points = append(drops.Points, Point{
					X: roundTo(pt.T.Seconds(), 3),
					Y: pt.V / 1000,
				})
			}
			if nonzero {
				out = append(out, drops)
			}
		}

		if cfg.MetricsDir != "" {
			dir := filepath.Join(cfg.MetricsDir, "timeline")
			if _, err := inst.WriteArtifacts(dir, obs.SanitizeName(dev.String())); err != nil {
				return nil, err
			}
		}
		if cfg.TraceDir != "" {
			dir := filepath.Join(cfg.TraceDir, "timeline")
			if _, err := inst.WriteTraceArtifacts(dir, obs.SanitizeName(dev.String())); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, group := range groups {
		fig.Series = append(fig.Series, group...)
	}
	return fig, nil
}

// roundTo quantizes v to the given number of decimals so recorder tick
// times from different runs land on shared x values in the figure.
func roundTo(v float64, decimals int) float64 {
	scale := 1.0
	for i := 0; i < decimals; i++ {
		scale *= 10
	}
	return float64(int64(v*scale+0.5)) / scale
}
