package experiment

import (
	"fmt"

	"barbican/internal/core"
)

// ExtensionNextGen (EXT1) runs the experiment the paper's conclusion
// calls for: it subjects a hypothetical purpose-built filtering card
// (nic.NextGen) to the same validation as the EFW — bandwidth at full
// rule depth and flood tolerance — and shows that an order-of-magnitude
// capacity margin makes 100 Mbps floods harmless.
func ExtensionNextGen(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Extension EXT1: validating a hypothetical flood-tolerant card (64-rule policy)",
		Columns: []string{"Metric", core.DeviceEFW.String(), core.DeviceNextGen.String()},
	}

	bandwidth := func(dev core.Device) (float64, error) {
		p, err := core.RunBandwidth(core.Scenario{
			Device: dev, Depth: 64,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return 0, err
		}
		return p.Mbps(), nil
	}
	flooded := func(dev core.Device) (float64, error) {
		p, err := core.RunBandwidth(core.Scenario{
			Device: dev, Depth: 64,
			FloodRatePPS: 12_500, FloodAllowed: true,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return 0, err
		}
		return p.Mbps(), nil
	}
	minFlood := func(dev core.Device) (string, error) {
		r, err := core.MinFloodRate(core.Scenario{
			Device: dev, Depth: 64, FloodAllowed: true,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return "", err
		}
		if !r.Found {
			return fmt.Sprintf("none up to %d pps", core.MaxSearchRatePPS), nil
		}
		return fmt.Sprintf("%.0f pps", r.RatePPS), nil
	}

	efwBW, err := bandwidth(core.DeviceEFW)
	if err != nil {
		return nil, err
	}
	ngBW, err := bandwidth(core.DeviceNextGen)
	if err != nil {
		return nil, err
	}
	efwFlood, err := flooded(core.DeviceEFW)
	if err != nil {
		return nil, err
	}
	ngFlood, err := flooded(core.DeviceNextGen)
	if err != nil {
		return nil, err
	}
	efwMin, err := minFlood(core.DeviceEFW)
	if err != nil {
		return nil, err
	}
	ngMin, err := minFlood(core.DeviceNextGen)
	if err != nil {
		return nil, err
	}
	t.Rows = [][]string{
		{"bandwidth, 64 rules (Mbps)", fmt.Sprintf("%.1f", efwBW), fmt.Sprintf("%.1f", ngBW)},
		{"bandwidth under 12.5k pps flood (Mbps)", fmt.Sprintf("%.1f", efwFlood), fmt.Sprintf("%.1f", ngFlood)},
		{"minimum DoS flood rate", efwMin, ngMin},
	}
	return t, nil
}
