package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// ExtensionNextGen (EXT1) runs the experiment the paper's conclusion
// calls for: it subjects a hypothetical purpose-built filtering card
// (nic.NextGen) to the same validation as the EFW — bandwidth at full
// rule depth and flood tolerance — and shows that an order-of-magnitude
// capacity margin makes 100 Mbps floods harmless. The six cells
// (three metrics × two devices) are independent runs and fan out over
// the executor.
func ExtensionNextGen(cfg Config) (*Table, error) {
	bandwidth := func(dev core.Device) func() (string, error) {
		return func() (string, error) {
			p, err := runAccountedBandwidth(cfg, core.Scenario{
				Device: dev, Depth: 64,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.1f", p.Mbps()), nil
		}
	}
	flooded := func(dev core.Device) func() (string, error) {
		return func() (string, error) {
			p, err := runAccountedBandwidth(cfg, core.Scenario{
				Device: dev, Depth: 64,
				FloodRatePPS: 12_500, FloodAllowed: true,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.1f", p.Mbps()), nil
		}
	}
	minFlood := func(dev core.Device) func() (string, error) {
		return func() (string, error) {
			r, err := core.MinFloodRate(core.Scenario{
				Device: dev, Depth: 64, FloodAllowed: true,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return "", err
			}
			cfg.account(r.Probes, r.SimSeconds, r.WallBusy)
			if !r.Found {
				return fmt.Sprintf("none up to %d pps", core.MaxSearchRatePPS), nil
			}
			return fmt.Sprintf("%.0f pps", r.RatePPS), nil
		}
	}

	cells, err := runner.Funcs(cfg.pool(),
		bandwidth(core.DeviceEFW), bandwidth(core.DeviceNextGen),
		flooded(core.DeviceEFW), flooded(core.DeviceNextGen),
		minFlood(core.DeviceEFW), minFlood(core.DeviceNextGen),
	)
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Extension EXT1: validating a hypothetical flood-tolerant card (64-rule policy)",
		Columns: []string{"Metric", core.DeviceEFW.String(), core.DeviceNextGen.String()},
		Rows: [][]string{
			{"bandwidth, 64 rules (Mbps)", cells[0], cells[1]},
			{"bandwidth under 12.5k pps flood (Mbps)", cells[2], cells[3]},
			{"minimum DoS flood rate", cells[4], cells[5]},
		},
	}, nil
}
