package experiment

import (
	"fmt"
	"time"

	"barbican/internal/core"
	"barbican/internal/measure"
	"barbican/internal/nic"
	"barbican/internal/nic/conntrack"
	"barbican/internal/runner"
)

// The stateflood family measures the new attack surface a stateful
// card buys: its conntrack table. A long-lived sparse TCP session (one
// small keepalive every 250 ms) is the victim; the attack wins when it
// pushes the session's entry out of the table so the established-only
// policy stops recognizing the connection. That happens at packet
// rates far below what CPU exhaustion needs — state is the cheaper
// resource to exhaust.

func (c Config) statefloodDuration() time.Duration {
	if c.Duration != 0 {
		return c.Duration
	}
	return 2 * time.Second
}

func (c Config) statefloodScenario(kind measure.FloodKind, policy conntrack.EvictPolicy, rate float64) core.StatefloodScenario {
	return core.StatefloodScenario{
		FloodKind:    kind,
		EvictPolicy:  policy,
		FloodRatePPS: rate,
		Seed:         c.Seed,
		Duration:     c.statefloodDuration(),
	}
}

// StatefloodCurves plots probe-session survival vs SYN-flood rate for
// each table eviction policy. LRU collapses first: the flood only has
// to recycle the table faster than the session's keepalive interval,
// and the session's entry — briefly the least recently used — is the
// one evicted. SYN-early-drop never evicts an assured entry, so its
// curve stays flat until ordinary packet-rate exhaustion.
func StatefloodCurves(cfg Config) (*Figure, error) {
	rates := []float64{1000, 2000, 4000, 6000, 8000, 12000, 20000, 30000}
	if cfg.Quick {
		rates = []float64{2000, 6000, 20000}
	}
	policies := []conntrack.EvictPolicy{conntrack.EvictLRU, conntrack.EvictRandom, conntrack.EvictSYNDrop}

	type task struct {
		series int
		policy conntrack.EvictPolicy
		rate   float64
	}
	var tasks []task
	for si, pol := range policies {
		for _, rate := range rates {
			tasks = append(tasks, task{series: si, policy: pol, rate: rate})
		}
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (Point, error) {
		t := tasks[i]
		p, err := core.RunStateflood(cfg.statefloodScenario(measure.FloodTCPSYN, t.policy, t.rate))
		if err != nil {
			return Point{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		pt := Point{X: t.rate, Y: p.SessionRatio()}
		if p.DoSed() {
			pt.Note = "DoS"
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Stateflood: Probe-Session Survival vs SYN-Flood Rate (StatefulFW, 1024-entry table, depth 64)",
		XLabel: "flood rate (packets/s)",
		YLabel: "session keepalives echoed (fraction)",
	}
	for _, pol := range policies {
		fig.Series = append(fig.Series, Series{Label: "evict " + pol.String()})
	}
	for i, t := range tasks {
		fig.Series[t.series].Points = append(fig.Series[t.series].Points, points[i])
	}
	return fig, nil
}

// statefloodThresholdRow is one minimum-rate search of the threshold
// table.
type statefloodThresholdRow struct {
	label string
	note  string
	run   func(cfg Config) (found bool, rate float64, probes int, sim float64, wall time.Duration, err error)
}

func statefloodSessionSearch(kind measure.FloodKind, policy conntrack.EvictPolicy) func(Config) (bool, float64, int, float64, time.Duration, error) {
	return func(cfg Config) (bool, float64, int, float64, time.Duration, error) {
		r, err := core.MinStatefloodRate(cfg.statefloodScenario(kind, policy, 0))
		if err != nil {
			return false, 0, 0, 0, 0, err
		}
		return r.Found, r.RatePPS, r.Probes, r.SimSeconds, r.WallBusy, nil
	}
}

func statefloodBandwidthSearch(allowed bool) func(Config) (bool, float64, int, float64, time.Duration, error) {
	return func(cfg Config) (bool, float64, int, float64, time.Duration, error) {
		r, err := core.MinFloodRate(core.Scenario{
			Device:       core.DeviceStateful,
			Depth:        64,
			FloodAllowed: allowed,
			Seed:         cfg.Seed,
			Duration:     cfg.statefloodDuration(),
		})
		if err != nil {
			return false, 0, 0, 0, 0, err
		}
		return r.Found, r.RatePPS, r.Probes, r.SimSeconds, r.WallBusy, nil
	}
}

// StatefloodThresholds is the family's headline table: the minimum
// flood rate that denies service, by attack and eviction policy, on
// the same card profile throughout. The SYN/LRU state-exhaustion
// threshold sits far below every packet-rate threshold — the state
// table, not the processor, is the card's scarcest resource — and
// SYN-early-drop pushes the threshold back to the packet-rate bound.
func StatefloodThresholds(cfg Config) (*Table, error) {
	rows := []statefloodThresholdRow{
		{
			label: "SYN flood / evict lru",
			note:  "state exhaustion: session entry recycled between keepalives",
			run:   statefloodSessionSearch(measure.FloodTCPSYN, conntrack.EvictLRU),
		},
		{
			label: "SYN flood / evict random",
			note:  "state exhaustion: eviction must hit the 1-in-1025 session entry",
			run:   statefloodSessionSearch(measure.FloodTCPSYN, conntrack.EvictRandom),
		},
		{
			label: "SYN flood / evict syn-drop",
			note:  "assured entries never evicted; only packet rate remains",
			run:   statefloodSessionSearch(measure.FloodTCPSYN, conntrack.EvictSYNDrop),
		},
		{
			label: "UDP flood (session criterion)",
			note:  "denied flood, no state created: pure packet-rate bound",
			run:   statefloodSessionSearch(measure.FloodUDP, 0),
		},
		{
			label: "UDP flood / stateless policy (bandwidth criterion)",
			note:  "paper's DoS criterion on the same card, admitted flood",
			run:   statefloodBandwidthSearch(true),
		},
	}
	if cfg.Quick {
		rows = []statefloodThresholdRow{rows[0], rows[2], rows[4]}
	}

	out, err := runner.Map(cfg.pool(), len(rows), func(i int) ([]string, error) {
		r := rows[i]
		found, rate, probes, sim, wall, err := r.run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.account(probes, sim, wall)
		min := fmt.Sprintf("> %d", core.MaxSearchRatePPS)
		if found {
			min = fmt.Sprintf("%.0f", rate)
		}
		return []string{r.label, min, fmt.Sprintf("%d", probes), r.note}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Stateflood: Minimum DoS Flood Rate by Attack and Eviction Policy (StatefulFW, depth 64)",
		Columns: []string{"attack", "min DoS rate (pps)", "probes", "notes"},
		Rows:    out,
	}, nil
}

// StatefloodACK measures the bare-ACK flood against the established-
// only policy: every flood packet classifies ctstate INVALID and is
// dropped after one table lookup, before any rule is evaluated. No
// state is ever created — the table holds only the probe session — and
// the session survives rates that the SYN flood wins at, demonstrating
// that the conntrack fast path drops stateless garbage without paying
// for it in table entries.
func StatefloodACK(cfg Config) (*Table, error) {
	rates := []float64{4000, 8000, 20000, 30000}
	if cfg.Quick {
		rates = []float64{8000, 20000}
	}

	rows, err := runner.Map(cfg.pool(), len(rates), func(i int) ([]string, error) {
		p, err := core.RunStateflood(cfg.statefloodScenario(measure.FloodTCPACK, 0, rates[i]))
		if err != nil {
			return nil, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		note := ""
		if p.DoSed() {
			note = "DoS"
		}
		return []string{
			fmt.Sprintf("%.0f", rates[i]),
			fmt.Sprintf("%.2f", p.SessionRatio()),
			fmt.Sprintf("%d", p.TargetNIC.RxNoStateDrops),
			fmt.Sprintf("%d", p.CTEntries),
			fmt.Sprintf("%d", p.Conntrack.Created),
			note,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Stateflood: ACK Flood Against an Established-Only Policy (dropped INVALID, no state created)",
		Columns: []string{"flood rate (pps)", "session survival", "no-state drops", "table entries", "entries created", "notes"},
		Rows:    rows,
	}, nil
}

// StatefloodRecovery reports the state-desync experiment: a fail-open
// degraded episode interrupts enforcement mid-session, and the table
// compares what each StateRecovery policy does to three flows — one
// tracked before the outage, one born during it (invisible to the
// card), one born after. RecoveryKeep restores the committed policy
// but severs the mid-outage flow: both endpoints hold a healthy
// connection the firewall refuses to recognize. RecoveryResync's
// loose-pickup window re-adopts it; RecoveryFlush severs even the
// pre-outage flow.
func StatefloodRecovery(cfg Config) (*Table, error) {
	policies := []nic.StateRecovery{nic.RecoveryKeep, nic.RecoveryFlush, nic.RecoveryResync}

	yes := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "SEVERED"
	}
	rows, err := runner.Map(cfg.pool(), len(policies), func(i int) ([]string, error) {
		r, err := core.RunStateRecovery(core.StateRecoveryScenario{Recovery: policies[i], Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cfg.account(1, r.SimSeconds, r.WallBusy)
		note := ""
		switch {
		case !r.MidOutageOK && r.PreOutageOK:
			note = "desync: outage-born flow invisible to restored policy"
		case !r.PreOutageOK:
			note = "flush severs every pre-existing flow"
		case r.PreOutageOK && r.MidOutageOK:
			note = "loose pickup re-adopts mid-stream flows"
		}
		return []string{
			policies[i].String(),
			yes(r.PreOutageOK), yes(r.MidOutageOK), yes(r.NewFlowOK),
			fmt.Sprintf("%d", r.WatchdogResets), note,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Stateflood: Connection Survival Across Degraded-Mode Recovery (fail-open outage, by state-recovery policy)",
		Columns: []string{"recovery", "pre-outage flow", "mid-outage flow", "new flow", "watchdog resets", "notes"},
		Rows:    rows,
	}, nil
}
