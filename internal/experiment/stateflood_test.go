package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// renderStatefloodArtifacts runs the whole stateflood family and
// renders every artifact form (text, markdown, CSV) — the byte stream
// the determinism golden compares across worker counts.
func renderStatefloodArtifacts(t *testing.T, cfg Config) []byte {
	t.Helper()
	var out bytes.Buffer
	fig, err := StatefloodCurves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(fig.Render())
	out.WriteString(fig.Markdown())
	if err := fig.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(Config) (*Table, error){
		StatefloodThresholds, StatefloodACK, StatefloodRecovery,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(tab.Render())
		out.WriteString(tab.Markdown())
		if err := tab.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestStatefloodDeterminism: a fixed seed yields byte-identical
// stateflood output serially and at -parallel 8. Conntrack eviction
// draws from a kernel-seeded private generator and every point owns a
// private kernel, so worker count must not leak into any rendered byte.
func TestStatefloodDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full stateflood regeneration; skipped in -short")
	}
	base := Config{Quick: true, Seed: 7}

	serialCfg := base
	serialCfg.Parallel = 1
	serial := renderStatefloodArtifacts(t, serialCfg)

	parallelCfg := base
	parallelCfg.Parallel = 8
	parallel := renderStatefloodArtifacts(t, parallelCfg)

	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hiS, hiP := max(0, i-80), min(len(serial), i+80), min(len(parallel), i+80)
		t.Fatalf("serial and parallel stateflood artifacts diverge at byte %d:\nserial:   …%q…\nparallel: …%q…",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}

// TestStatefloodThresholdOrdering checks the family's headline result:
// state-table exhaustion (SYN flood vs the LRU table) DoSes the session
// at a packet rate strictly below the stateless packet-rate bound for
// the same card, and syn-early-drop pushes the bound back up.
func TestStatefloodThresholdOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full threshold search; skipped in -short")
	}
	tab, err := StatefloodThresholds(Config{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rate := func(label string) float64 {
		t.Helper()
		for _, row := range tab.Rows {
			if row[0] != label {
				continue
			}
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatalf("%s: unparseable rate %q (search exhausted?)", label, row[1])
			}
			return v
		}
		t.Fatalf("missing row %q in %v", label, tab.Rows)
		return 0
	}
	lru := rate("SYN flood / evict lru")
	synDrop := rate("SYN flood / evict syn-drop")
	stateless := rate("UDP flood / stateless policy (bandwidth criterion)")
	if lru >= stateless {
		t.Errorf("state exhaustion (%g pps) is not cheaper than the stateless packet-rate bound (%g pps)",
			lru, stateless)
	}
	if synDrop <= lru {
		t.Errorf("syn-drop threshold (%g pps) does not improve on lru (%g pps)", synDrop, lru)
	}
}

// TestStatefloodRecoveryTable checks the desync narrative end to end:
// keep severs the mid-outage flow, flush severs the pre-outage flows,
// resync keeps everything alive.
func TestStatefloodRecoveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep; skipped in -short")
	}
	tab, err := StatefloodRecovery(Config{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[string][]string)
	for _, row := range tab.Rows {
		byPolicy[row[0]] = append([]string(nil), row...)
	}
	check := func(policy, pre, mid, fresh string) {
		t.Helper()
		row := byPolicy[policy]
		if row == nil {
			t.Fatalf("missing row %q in %v", policy, tab.Rows)
		}
		if row[1] != pre || row[2] != mid || row[3] != fresh {
			t.Errorf("%s: pre/mid/new = %q/%q/%q, want %q/%q/%q",
				policy, row[1], row[2], row[3], pre, mid, fresh)
		}
	}
	check("keep", "yes", "SEVERED", "yes")
	check("flush", "SEVERED", "SEVERED", "yes")
	check("resync", "yes", "yes", "yes")
	if row := byPolicy["keep"]; row != nil && !strings.Contains(row[5], "desync") {
		t.Errorf("keep row note does not name the desync hazard: %v", row)
	}
}
