package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// Table1Depths are the standard-rule depths of Table 1's columns.
var Table1Depths = []int{1, 8, 16, 32, 64}

// Table1VPGDepths are the VPG counts of Table 1's VPG columns.
var Table1VPGDepths = []int{1, 2, 3, 4}

// Table1 reproduces Table 1: HTTP performance of an Apache-style
// webserver protected by an ADF, against a standard NIC baseline, with
// standard rules at increasing depths and with VPG rules. Each column
// is one independent HTTP load run and fans out over the executor.
func Table1(cfg Config) (*Table, error) {
	depths := Table1Depths
	vpgDepths := Table1VPGDepths
	if cfg.Quick {
		depths = []int{1, 64}
		vpgDepths = []int{1}
	}

	type task struct {
		name  string
		dev   core.Device
		depth int
	}
	tasks := []task{{name: "Standard NIC", dev: core.DeviceStandard, depth: 0}}
	for _, d := range depths {
		tasks = append(tasks, task{name: fmt.Sprintf("ADF %d", d), dev: core.DeviceADF, depth: d})
	}
	for _, v := range vpgDepths {
		tasks = append(tasks, task{name: fmt.Sprintf("VPG %d", v), dev: core.DeviceADFVPG, depth: v})
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (core.HTTPPoint, error) {
		t := tasks[i]
		p, err := core.RunHTTP(core.Scenario{
			Device: t.dev, Depth: t.depth,
			Duration: cfg.httpDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return core.HTTPPoint{}, fmt.Errorf("table1 %s: %w", t.name, err)
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Table 1: HTTP Performance of Apache Webserver Protected by an ADF",
		Columns: []string{"Experiment"},
	}
	for _, c := range tasks {
		t.Columns = append(t.Columns, c.name)
	}
	fetches := []string{"HTTP Fetches/s"}
	connect := []string{"ms/connect"}
	first := []string{"ms/first-response"}
	for _, p := range points {
		fetches = append(fetches, fmt.Sprintf("%.1f", p.Load.FetchesPerSec))
		connect = append(connect, fmt.Sprintf("%.2f", p.Load.ConnectMs.Mean()))
		first = append(first, fmt.Sprintf("%.2f", p.Load.FirstResponseMs.Mean()))
	}
	t.Rows = [][]string{fetches, connect, first}
	return t, nil
}
