package experiment

import (
	"fmt"

	"barbican/internal/core"
)

// Table1Depths are the standard-rule depths of Table 1's columns.
var Table1Depths = []int{1, 8, 16, 32, 64}

// Table1VPGDepths are the VPG counts of Table 1's VPG columns.
var Table1VPGDepths = []int{1, 2, 3, 4}

// Table1 reproduces Table 1: HTTP performance of an Apache-style
// webserver protected by an ADF, against a standard NIC baseline, with
// standard rules at increasing depths and with VPG rules.
func Table1(cfg Config) (*Table, error) {
	depths := Table1Depths
	vpgDepths := Table1VPGDepths
	if cfg.Quick {
		depths = []int{1, 64}
		vpgDepths = []int{1}
	}

	type column struct {
		name  string
		point core.HTTPPoint
	}
	var cols []column

	run := func(name string, dev core.Device, depth int) error {
		p, err := core.RunHTTP(core.Scenario{
			Device: dev, Depth: depth,
			Duration: cfg.httpDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("table1 %s: %w", name, err)
		}
		cols = append(cols, column{name: name, point: p})
		return nil
	}

	if err := run("Standard NIC", core.DeviceStandard, 0); err != nil {
		return nil, err
	}
	for _, d := range depths {
		if err := run(fmt.Sprintf("ADF %d", d), core.DeviceADF, d); err != nil {
			return nil, err
		}
	}
	for _, v := range vpgDepths {
		if err := run(fmt.Sprintf("VPG %d", v), core.DeviceADFVPG, v); err != nil {
			return nil, err
		}
	}

	t := &Table{
		Title:   "Table 1: HTTP Performance of Apache Webserver Protected by an ADF",
		Columns: []string{"Experiment"},
	}
	for _, c := range cols {
		t.Columns = append(t.Columns, c.name)
	}
	fetches := []string{"HTTP Fetches/s"}
	connect := []string{"ms/connect"}
	first := []string{"ms/first-response"}
	for _, c := range cols {
		fetches = append(fetches, fmt.Sprintf("%.1f", c.point.Load.FetchesPerSec))
		connect = append(connect, fmt.Sprintf("%.2f", c.point.Load.ConnectMs.Mean()))
		first = append(first, fmt.Sprintf("%.2f", c.point.Load.FirstResponseMs.Mean()))
	}
	t.Rows = [][]string{fetches, connect, first}
	return t, nil
}
