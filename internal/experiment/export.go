package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"barbican/internal/core"
	"barbican/internal/obs"
	"barbican/internal/obs/profile"
)

// runObservedBandwidth runs a bandwidth scenario, attaching a flight
// recorder (and, per cfg, a packet tracer and/or profiler) and
// writing per-run telemetry artifacts when cfg.MetricsDir,
// cfg.TraceDir, or cfg.ProfileDir is set; otherwise it is plain
// core.RunBandwidth. exp and label name the artifact files:
// <MetricsDir>/<exp>/<label>.{prom,csv,json},
// <TraceDir>/<exp>/<label>.trace.{json,txt}, and
// <ProfileDir>/<exp>/<label>.{cost,kernel}.{pprof,folded}. Profiled
// points carry their merged cost profile (CostProfile) back to the
// caller for per-experiment aggregation.
func runObservedBandwidth(cfg Config, exp, label string, s core.Scenario) (core.BandwidthPoint, error) {
	if cfg.MetricsDir == "" && cfg.TraceDir == "" && cfg.ProfileDir == "" {
		return core.RunBandwidth(s)
	}
	p, inst, err := core.RunBandwidthObserved(s, core.ObserveOptions{
		SampleEvery: cfg.SampleEvery,
		Trace:       cfg.traceOptions(),
		Profile:     cfg.profileOptions(),
	})
	if err != nil {
		return p, err
	}
	if cfg.MetricsDir != "" {
		dir := filepath.Join(cfg.MetricsDir, exp)
		if _, err := inst.WriteArtifacts(dir, label); err != nil {
			return p, fmt.Errorf("%s/%s: %w", exp, label, err)
		}
		if p.Attribution != nil {
			if err := WriteRuleAttribution(dir, label, p.Attribution); err != nil {
				return p, fmt.Errorf("%s/%s: %w", exp, label, err)
			}
		}
	}
	if cfg.TraceDir != "" {
		if _, err := inst.WriteTraceArtifacts(filepath.Join(cfg.TraceDir, exp), label); err != nil {
			return p, fmt.Errorf("%s/%s: %w", exp, label, err)
		}
	}
	if cfg.ProfileDir != "" {
		if _, err := inst.WriteProfileArtifacts(filepath.Join(cfg.ProfileDir, exp), label); err != nil {
			return p, fmt.Errorf("%s/%s: %w", exp, label, err)
		}
	}
	return p, nil
}

// writeMergedCostProfile merges per-point cost profiles (in the order
// given, which callers keep in declaration order so the merged bytes
// are parallelism-independent) and writes them as
// <ProfileDir>/<exp>/<exp>.cost.{pprof,folded}. No-op without
// cfg.ProfileDir.
func writeMergedCostProfile(cfg Config, exp string, parts []*profile.Data) error {
	if cfg.ProfileDir == "" {
		return nil
	}
	merged := profile.NewData(profile.CostSampleTypes, "cost")
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			return fmt.Errorf("%s: merge cost profile: %w", exp, err)
		}
	}
	dir := filepath.Join(cfg.ProfileDir, exp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, obs.SanitizeName(exp))
	if err := merged.WritePprofFile(base + ".cost.pprof"); err != nil {
		return err
	}
	return merged.WriteFoldedFile(base + ".cost.folded")
}

// WriteRuleAttribution writes a run's per-rule firewall breakdown as
// <dir>/<label>.rules.{csv,json}: one row per rule with hit count and
// the profile's predicted walk cost/latency at that rule's position,
// plus a final default-action row.
func WriteRuleAttribution(dir, label string, a *core.RuleAttribution) error {
	writeCSV := func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"rule_index", "rule", "hits", "cost_units", "latency_us"}); err != nil {
			return err
		}
		for _, r := range a.Rules {
			err := cw.Write([]string{
				fmt.Sprintf("%d", r.Index), r.Text, fmt.Sprintf("%d", r.Hits),
				fmt.Sprintf("%g", r.CostUnits), fmt.Sprintf("%g", float64(r.Latency.Nanoseconds())/1e3),
			})
			if err != nil {
				return err
			}
		}
		err := cw.Write([]string{
			"default", fmt.Sprintf("default (%d rules walked)", len(a.Rules)),
			fmt.Sprintf("%d", a.DefaultHits),
			fmt.Sprintf("%g", a.DefaultCost), fmt.Sprintf("%g", float64(a.DefaultLatency.Nanoseconds())/1e3),
		})
		if err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	writeJSON := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(a)
	}
	return writeArtifactPair(dir, label+".rules", writeCSV, writeJSON)
}

// WriteCSV writes the figure as long-form CSV: series,x,y,note.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel, "note"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			err := cw.Write([]string{s.Label, fmt.Sprintf("%g", p.X), fmt.Sprintf("%g", p.Y), p.Note})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the figure as a machine-readable JSON document.
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteCSV writes the table as CSV, header row first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the table as a machine-readable JSON document.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// WriteFigureArtifacts writes <dir>/<name>.figure.{csv,json}.
func WriteFigureArtifacts(dir, name string, f *Figure) error {
	return writeArtifactPair(dir, name+".figure", f.WriteCSV, f.WriteJSON)
}

// WriteTableArtifacts writes <dir>/<name>.table.{csv,json}.
func WriteTableArtifacts(dir, name string, t *Table) error {
	return writeArtifactPair(dir, name+".table", t.WriteCSV, t.WriteJSON)
}

func writeArtifactPair(dir, base string, csvFn, jsonFn func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: artifacts dir: %w", err)
	}
	base = obs.SanitizeName(base)
	for _, out := range []struct {
		ext string
		fn  func(io.Writer) error
	}{{".csv", csvFn}, {".json", jsonFn}} {
		p := filepath.Join(dir, base+out.ext)
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := out.fn(f); err != nil {
			f.Close()
			return fmt.Errorf("experiment: write %s: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiment: close %s: %w", p, err)
		}
	}
	return nil
}
