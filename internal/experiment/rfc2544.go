package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/measure"
	"barbican/internal/runner"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// AppendixRFC2544 (APX1) runs the RFC 2544 §26.1 zero-loss throughput
// search the paper would have run if the methodology had applied
// directly (§4.1 explains why it could not on real hardware): highest
// loss-free frame rate per standard frame size, per device. It makes
// the paper's small-frame argument quantitative — a firewall that
// sustains 100 Mbps of 1518-byte frames can still be far below the
// medium's small-frame rate.
//
// Each device column is one executor task; within a column the frame
// sizes run sequentially so each size's binary search warm-starts from
// the neighboring size's result (scaled by the size ratio, since a
// card's ceiling is roughly a fixed packet rate). The warm-start chain
// stays inside one task, so trial sequences are identical at any worker
// count.
func AppendixRFC2544(cfg Config) (*Table, error) {
	sizes := measure.RFC2544FrameSizes
	if cfg.Quick {
		sizes = []int{64, 1518}
	}
	type column struct {
		name   string
		device core.Device
		depth  int
	}
	columns := []column{
		{name: "Standard NIC", device: core.DeviceStandard, depth: 0},
		{name: "EFW 1", device: core.DeviceEFW, depth: 1},
		{name: "EFW 64", device: core.DeviceEFW, depth: 64},
		{name: "ADF 64", device: core.DeviceADF, depth: 64},
	}
	if cfg.Quick {
		columns = columns[:3:3]
	}

	results, err := runner.Map(cfg.pool(), len(columns), func(ci int) ([]measure.ThroughputResult, error) {
		col := columns[ci]
		out := make([]measure.ThroughputResult, len(sizes))
		hint, prevSize := 0.0, 0
		for si, size := range sizes {
			scaled := 0.0
			if hint > 0 && prevSize > 0 {
				// A device ceiling is ~constant in packets/s, a medium
				// ceiling scales with frame size; scale by size ratio and
				// let the gallop correct the difference either way.
				scaled = hint * float64(prevSize) / float64(size)
			}
			res, err := rfc2544Point(cfg, col.device, col.depth, size, scaled)
			if err != nil {
				return nil, fmt.Errorf("rfc2544 %s %d-byte: %w", col.name, size, err)
			}
			out[si] = res
			hint, prevSize = res.FramesPerSec, size
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Appendix APX1: RFC 2544 zero-loss throughput (frames/s) by frame size",
		Columns: []string{"Frame size"},
	}
	for _, c := range columns {
		t.Columns = append(t.Columns, c.name)
	}
	for si, size := range sizes {
		row := []string{fmt.Sprint(size)}
		for ci := range columns {
			res := results[ci][si]
			cell := fmt.Sprintf("%.0f", res.FramesPerSec)
			if res.LineRateLimited {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"(* = line rate)", "", "", ""})
	return t, nil
}

func rfc2544Point(cfg Config, device core.Device, depth int, frameSize int, hint float64) (measure.ThroughputResult, error) {
	// Trials must be long enough that a sustained over-capacity rate
	// overruns the card's 128-frame ring and shows up as loss; the
	// ThroughputConfig default (2 s) is the calibrated minimum.
	tcfg := measure.ThroughputConfig{FrameSize: frameSize}
	var kernels []*sim.Kernel
	newPair := func() (*sim.Kernel, *stack.Host, *stack.Host, error) {
		tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: device, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		if depth > 0 {
			rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
			if err != nil {
				return nil, nil, nil, err
			}
			tb.InstallPolicy(tb.Target, rs)
		}
		kernels = append(kernels, tb.Kernel)
		return tb.Kernel, tb.Client, tb.Target, nil
	}
	// Ethernet payload = frame minus header+FCS; the medium's maximum
	// frame rate for this size bounds the search.
	maxRate := link.MaxFrameRate(frameSize-18, link.Rate100Mbps)
	res, err := measure.ZeroLossThroughputFrom(tcfg, maxRate, hint, measure.HostThroughputTrial(tcfg, newPair))
	for _, k := range kernels {
		cfg.account(1, k.Now().Seconds(), k.WallBusy())
	}
	return res, err
}
