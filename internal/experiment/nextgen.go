package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/obs/profile"
	"barbican/internal/runner"
)

// Fig2NGDepths extends Figure 2's x axis past the paper's 64 rules: the
// compiled matcher's claim is depth independence, so the sweep keeps
// doubling until a linear card's walk dominates its cost entirely.
var Fig2NGDepths = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Fig2NGDevices are the cards compared: the paper's two filtering cards
// against the conclusion's hypothetical flood-tolerant card, now modeled
// with a compiled classifier and per-flow verdict cache.
var Fig2NGDevices = []core.Device{core.DeviceEFW, core.DeviceADF, core.DeviceNextGen}

// Fig2NextGen reruns the Figure 2 bandwidth-vs-depth sweep with the
// NextGen profile alongside EFW and ADF. The headline: the linear cards'
// depth cliff goes flat — NextGen's per-packet cost is a compiled lookup
// (or a cache hit), so available bandwidth stays at wire speed at any
// rule-set depth. Same fan-out discipline as Fig2: every (device, depth)
// point is an independent task; points land back in declaration order.
func Fig2NextGen(cfg Config) (*Figure, error) {
	depths := Fig2NGDepths
	if cfg.Quick {
		depths = []int{1, 64, 512}
	}

	devs := Fig2NGDevices
	type task struct {
		series int
		dev    core.Device
		depth  int
	}
	var tasks []task
	for si, dev := range devs {
		for _, d := range depths {
			tasks = append(tasks, task{series: si, dev: dev, depth: d})
		}
	}

	type result struct {
		point Point
		prof  *profile.Data
	}
	results, err := runner.Map(cfg.pool(), len(tasks), func(i int) (result, error) {
		t := tasks[i]
		label := fmt.Sprintf("%s_depth-%d", t.dev, t.depth)
		p, err := runObservedBandwidth(cfg, "fig2ng", label, core.Scenario{
			Device: t.dev, Depth: t.depth,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return result{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		return result{point: Point{X: float64(t.depth), Y: p.Mbps()}, prof: p.CostProfile}, nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.ProfileDir != "" {
		parts := make([]*profile.Data, 0, len(results))
		for _, r := range results {
			if r.prof != nil {
				parts = append(parts, r.prof)
			}
		}
		if err := writeMergedCostProfile(cfg, "fig2ng", parts); err != nil {
			return nil, err
		}
	}

	fig := &Figure{
		Title:  "Figure 2 (NextGen): Available Bandwidth vs Rule-Set Depth, Compiled Matcher",
		XLabel: "rules traversed",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, dev := range devs {
		fig.Series = append(fig.Series, Series{Label: dev.String()})
	}
	for i, t := range tasks {
		fig.Series[t.series].Points = append(fig.Series[t.series].Points, results[i].point)
	}
	return fig, nil
}

// Fig3NGDepths are the rule depths of the NextGen flood-tolerance sweep.
var Fig3NGDepths = []int{1, 8, 16, 32, 64, 128, 256, 512}

// Fig3NGClasses compares flood tolerance on the paper's Allow class —
// the one the authors could measure without wedging cards — across the
// two linear cards and the compiled NextGen card.
var Fig3NGClasses = []Fig3bClass{
	{Device: core.DeviceEFW, Allowed: true},
	{Device: core.DeviceADF, Allowed: true},
	{Device: core.DeviceNextGen, Allowed: true},
}

// Fig3NextGen reruns the Figure 3(b) minimum-DoS-flood-rate sweep with
// the NextGen card alongside EFW and ADF. The linear cards' tolerance
// decays with depth (each flood packet walks the whole rule-set); the
// NextGen card's per-packet cost is flat and low enough that no rate
// within the search bounds causes denial of service — those points carry
// the "no DoS found" note instead of a rate.
//
// As in Fig3b, each class is one executor task and depths run
// sequentially inside it so each search warm-starts from the neighboring
// depth's threshold; the probe sequence is identical at any worker count.
func Fig3NextGen(cfg Config) (*Figure, error) {
	depths := Fig3NGDepths
	classes := Fig3NGClasses
	if cfg.Quick {
		depths = []int{1, 512}
		classes = []Fig3bClass{
			{Device: core.DeviceEFW, Allowed: true},
			{Device: core.DeviceNextGen, Allowed: true},
		}
	}

	series, err := runner.Map(cfg.pool(), len(classes), func(ci int) (Series, error) {
		class := classes[ci]
		s := Series{Label: class.Label()}
		hint := 0.0
		for _, d := range depths {
			r, err := core.MinFloodRateFrom(core.Scenario{
				Device: class.Device, Depth: d, FloodAllowed: class.Allowed,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			}, hint)
			if err != nil {
				return Series{}, err
			}
			cfg.account(r.Probes, r.SimSeconds, r.WallBusy)
			pt := Point{X: float64(d)}
			switch {
			case !r.Found:
				pt.Note = "no DoS found"
				hint = 0
			case r.LockedUp:
				pt.Y = r.RatePPS
				pt.Note = "LOCKUP"
				hint = r.RatePPS
			default:
				pt.Y = r.RatePPS
				hint = r.RatePPS
			}
			s.Points = append(s.Points, pt)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Figure 3(b) (NextGen): Minimum DoS Flood Rate vs Rule-Set Depth, Compiled Matcher",
		XLabel: "rules traversed before action",
		YLabel: "minimum flood rate (packets/s)",
		Series: series,
	}
	return fig, nil
}
