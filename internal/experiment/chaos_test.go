package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"barbican/internal/faults"
)

// renderChaosArtifacts runs the chaos family and renders every artifact
// form (text, markdown, CSV) — the byte stream the determinism golden
// compares across worker counts.
func renderChaosArtifacts(t *testing.T, cfg Config) []byte {
	t.Helper()
	var out bytes.Buffer
	fig, err := ChaosBandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ChaosConvergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(fig.Render())
	out.WriteString(fig.Markdown())
	if err := fig.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	out.WriteString(tab.Render())
	out.WriteString(tab.Markdown())
	if err := tab.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestChaosDeterminism: a fixed fault-plan seed yields byte-identical
// chaos experiment output serially and at -parallel 8. Fault injectors
// draw from private seeded generators and every point owns a private
// kernel, so worker count must not leak into any rendered byte.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos regeneration; skipped in -short")
	}
	base := Config{Quick: true, Seed: 7, FaultSeed: 42}

	serialCfg := base
	serialCfg.Parallel = 1
	serial := renderChaosArtifacts(t, serialCfg)

	parallelCfg := base
	parallelCfg.Parallel = 8
	parallel := renderChaosArtifacts(t, parallelCfg)

	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hiS, hiP := max(0, i-80), min(len(serial), i+80), min(len(parallel), i+80)
		t.Fatalf("serial and parallel chaos artifacts diverge at byte %d:\nserial:   …%q…\nparallel: …%q…",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}

// TestChaosConvergenceTable checks the family's headline result: the
// retrying push converges through loss and partition, and the legacy
// single-shot row does not.
func TestChaosConvergenceTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos regeneration; skipped in -short")
	}
	tab, err := ChaosConvergence(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string][]string)
	for _, row := range tab.Rows {
		byLabel[row[1]] = append([]string(nil), row...)
	}
	for _, label := range []string{"clean mgmt", "mgmt loss 30%", "mgmt partition"} {
		row := byLabel[label]
		if row == nil {
			t.Fatalf("missing row %q in %v", label, tab.Rows)
		}
		if row[2] != "yes" {
			t.Errorf("%s: converged = %q, want yes (row %v)", label, row[2], row)
		}
	}
	legacy := byLabel["partition, no retry"]
	if legacy == nil {
		t.Fatalf("missing legacy row in %v", tab.Rows)
	}
	if legacy[2] != "no" {
		t.Errorf("legacy single-shot converged through a partition: %v", legacy)
	}
	if legacy[7] == "" {
		t.Errorf("legacy row has no terminal push error: %v", legacy)
	}
	// The partitioned-but-retrying row must show retries doing the work.
	if row := byLabel["mgmt partition"]; row[5] == "0" {
		t.Errorf("partition row shows no retries: %v", row)
	}
}

// TestChaosFaultsOverride: cfg.Faults (the -faults flag) collapses the
// condition sweep to the one custom plan.
func TestChaosFaultsOverride(t *testing.T) {
	plan, err := faults.ParsePlan("loss=0.2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quick: true, Duration: 2 * time.Second, Faults: &plan}
	tab, err := ChaosConvergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("override produced %d rows, want 1: %v", len(tab.Rows), tab.Rows)
	}
	if !strings.Contains(tab.Rows[0][1], "loss=0.2") {
		t.Errorf("override row label = %q", tab.Rows[0][1])
	}
}
