package experiment

import (
	"bytes"
	"strconv"
	"testing"
)

// renderDetectArtifacts runs the detection family and renders every
// artifact form — the byte stream the determinism golden compares
// across worker counts. FleetHealth is included because its rendered
// timeline exposes every transition timestamp, the most
// divergence-sensitive output the plane produces.
func renderDetectArtifacts(t *testing.T, cfg Config) []byte {
	t.Helper()
	var out bytes.Buffer
	fig, err := DetectionLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := DetectionChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	health, err := FleetHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(fig.Render())
	out.WriteString(fig.Markdown())
	if err := fig.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	out.WriteString(tab.Render())
	out.WriteString(tab.Markdown())
	if err := tab.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	out.WriteString(health)
	return out.Bytes()
}

// TestDetectionDeterminism: detection artifacts — time-to-detect,
// exposure windows, alert timelines — are byte-identical serially and
// at -parallel 8 for a fixed seed pair. Alert timestamps come from
// per-point private kernels in virtual time, so worker count must not
// leak into any rendered byte.
func TestDetectionDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection regeneration; skipped in -short")
	}
	base := Config{Quick: true, Seed: 7, FaultSeed: 42}

	serialCfg := base
	serialCfg.Parallel = 1
	serial := renderDetectArtifacts(t, serialCfg)

	parallelCfg := base
	parallelCfg.Parallel = 8
	parallel := renderDetectArtifacts(t, parallelCfg)

	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hiS, hiP := max(0, i-80), min(len(serial), i+80), min(len(parallel), i+80)
		t.Fatalf("serial and parallel detection artifacts diverge at byte %d:\nserial:   …%q…\nparallel: …%q…",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}

// TestDetectionChaosTable checks the family's headline result at the
// experiment level: management-plane loss measurably widens both
// time-to-detect and the window of exposure versus the clean channel.
func TestDetectionChaosTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection regeneration; skipped in -short")
	}
	tab, err := DetectionChaos(Config{Quick: true, Seed: 7, FaultSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string][]string)
	for _, row := range tab.Rows {
		byLabel[row[0]] = row
	}
	clean, lossy := byLabel["clean mgmt"], byLabel["mgmt loss 60%"]
	if clean == nil || lossy == nil {
		t.Fatalf("missing clean/loss rows in %v", tab.Rows)
	}
	num := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	if num(lossy, 1) <= num(clean, 1) {
		t.Errorf("time-to-detect under 60%% loss (%s ms) not wider than clean (%s ms)",
			lossy[1], clean[1])
	}
	if num(lossy, 2) <= num(clean, 2) {
		t.Errorf("exposure at detect under 60%% loss (%s) not wider than clean (%s)",
			lossy[2], clean[2])
	}
	if num(lossy, 6) == 0 {
		t.Errorf("60%% loss produced no telemetry sequence gaps: %v", lossy)
	}
}
