package experiment

import (
	"strings"
	"testing"
	"time"
)

// TestNextGenFiguresQuick is the headline claim in test form: under the
// compiled-matcher profile the Figure 2 depth cliff goes flat and no
// flood rate within the search bounds causes denial of service, while
// the linear EFW keeps the paper's depth-dependent decline on the same
// sweep.
func TestNextGenFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweeps; skipped in -short")
	}
	cfg := Config{Quick: true, Duration: 300 * time.Millisecond}

	fig2, err := Fig2NextGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := func(fig *Figure, label string) *Series {
		for i := range fig.Series {
			if strings.HasPrefix(fig.Series[i].Label, label) {
				return &fig.Series[i]
			}
		}
		t.Fatalf("no series labeled %q in %q", label, fig.Title)
		return nil
	}

	ng := series(fig2, "NextGenFW")
	lo, hi := ng.Points[0].Y, ng.Points[0].Y
	for _, p := range ng.Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	if lo < 70 {
		t.Errorf("NextGen bandwidth fell to %.1f Mbps; want wire speed at every depth", lo)
	}
	if hi > 1.15*lo {
		t.Errorf("NextGen bandwidth varies %.1f–%.1f Mbps across depths 1–512; want flat (<1.15x)", lo, hi)
	}

	efw := series(fig2, "EFW")
	first, last := efw.Points[0].Y, efw.Points[len(efw.Points)-1].Y
	if last > first/2 {
		t.Errorf("EFW bandwidth at depth 512 = %.1f Mbps vs %.1f at depth 1; want the linear cliff", last, first)
	}

	fig3, err := Fig3NextGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series(fig3, "NextGenFW").Points {
		if p.Note != "no DoS found" {
			t.Errorf("NextGen at depth %.0f: DoS at %.0f pps; want none within search bounds", p.X, p.Y)
		}
	}
	for _, p := range series(fig3, "EFW").Points {
		if p.Y <= 0 {
			t.Errorf("EFW at depth %.0f: no DoS rate found; the linear card must be floodable", p.X)
		}
	}
}
