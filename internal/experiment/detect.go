package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"barbican/internal/core"
	"barbican/internal/faults"
	"barbican/internal/obs"
	"barbican/internal/runner"
	"barbican/internal/telemetry"
)

// detectRate is the calibrated flood rate the exposure and chaos
// families use: it overloads the ADF card enough to self-signal (drops
// and backlog rise) while its telemetry agent can still get reports
// out, so detection is report-driven on a clean management channel and
// falls back to the collector's silence watchdog only when the channel
// eats the reports. Higher rates squeeze out all in-band telemetry and
// every condition collapses onto the silence path.
const detectRate = 6000

func (c Config) detectDuration() time.Duration {
	if c.Duration != 0 {
		return c.Duration
	}
	if c.Quick {
		return 3 * time.Second
	}
	return 5 * time.Second
}

// detectCondition is one management-channel state for the detection
// chaos sweep.
type detectCondition struct {
	label string
	plan  faults.Plan
}

// detectConditions returns the management-channel sweep for the
// detection chaos family. With cfg.Faults set (the -faults flag), the
// sweep collapses to that single custom plan.
func detectConditions(cfg Config) []detectCondition {
	if cfg.Faults != nil {
		return []detectCondition{{label: "faults " + cfg.Faults.String(), plan: *cfg.Faults}}
	}
	conds := []detectCondition{
		{label: "clean mgmt"},
		{label: "mgmt loss 30%", plan: faults.Plan{Loss: 0.30}},
		{label: "mgmt loss 60%", plan: faults.Plan{Loss: 0.60}},
		{label: "mgmt partition", plan: chaosPartition},
	}
	if cfg.Quick {
		conds = []detectCondition{conds[0], conds[2], conds[3]}
	}
	return conds
}

func (c Config) detectScenario(dev core.Device, depth int, rate float64, allowed bool, cond detectCondition) core.DetectionScenario {
	return core.DetectionScenario{
		Device:       dev,
		Depth:        depth,
		FloodAllowed: allowed,
		FloodRatePPS: rate,
		MgmtFaults:   cond.plan,
		FaultSeed:    c.FaultSeed,
		Seed:         c.Seed,
		Duration:     c.detectDuration(),
	}
}

func detectNote(p core.DetectionPoint) string {
	var notes []string
	if !p.Detected && p.Scenario.FloodRatePPS > 0 {
		notes = append(notes, "no detect")
	}
	if p.TargetLocked {
		notes = append(notes, "LOCKUP")
	}
	if p.Detected && len(p.Timeline) > 0 {
		for _, tr := range p.Timeline {
			if tr.To == telemetry.AlertAlerting && tr.At == p.AlertAt && tr.Signal < 0 {
				notes = append(notes, "via silence")
				break
			}
		}
	}
	if p.PushError != "" {
		notes = append(notes, p.PushError)
	}
	return strings.Join(notes, "; ")
}

// DetectionLatency measures time-to-detect vs flood rate for each
// card, flooding the deny-flood policy at depth 64: every flood packet
// lands in the card's deny counters, so the signal reaches the
// collector at whatever fidelity the card's own condition permits. The
// EFW series reproduces the paper's Deny-All lockup — the card goes
// mute and detection arrives via the collector's silence watchdog.
func DetectionLatency(cfg Config) (*Figure, error) {
	rates := []float64{2000, 4000, 8000, 12500}
	if cfg.Quick {
		rates = []float64{2000, 8000}
	}
	devs := []core.Device{core.DeviceEFW, core.DeviceADF, core.DeviceNextGen}
	conds := detectConditions(cfg)
	cond := conds[0] // latency sweeps the clean channel (or -faults)

	type task struct {
		series int
		dev    core.Device
		rate   float64
	}
	var tasks []task
	for si, dev := range devs {
		for _, rate := range rates {
			tasks = append(tasks, task{series: si, dev: dev, rate: rate})
		}
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (Point, error) {
		t := tasks[i]
		p, err := core.RunDetection(cfg.detectScenario(t.dev, 64, t.rate, false, cond))
		if err != nil {
			return Point{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		pt := Point{X: t.rate, Note: detectNote(p)}
		if p.Detected {
			pt.Y = float64(p.TimeToDetect.Microseconds()) / 1e3
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Detection: Time-to-Detect vs Flood Rate (denied flood, depth 64)",
		XLabel: "flood rate (packets/s)",
		YLabel: "time to detect (ms)",
	}
	for _, dev := range devs {
		fig.Series = append(fig.Series, Series{Label: dev.String()})
	}
	for i, t := range tasks {
		fig.Series[t.series].Points = append(fig.Series[t.series].Points, points[i])
	}
	return fig, nil
}

// DetectionExposure measures the window of exposure: an admitted flood
// (the policy has no rule against it yet) runs until the collector
// detects it and pushes the deny-flood policy. Exposure is counted in
// flood datagrams the target's stack actually delivered — before the
// alert, before the push converged, and overall. Cards that absorb
// the flood without stress (NextGen, and the EFW at this rate) never
// self-signal, and the full flood lands: detection needs the card to
// hurt.
func DetectionExposure(cfg Config) (*Table, error) {
	type combo struct {
		dev   core.Device
		depth int
	}
	combos := []combo{
		{core.DeviceEFW, 64},
		{core.DeviceADF, 16},
		{core.DeviceADF, 64},
		{core.DeviceNextGen, 64},
	}
	if cfg.Quick {
		combos = []combo{{core.DeviceADF, 64}, {core.DeviceNextGen, 64}}
	}
	cond := detectConditions(cfg)[0]

	rows, err := runner.Map(cfg.pool(), len(combos), func(i int) ([]string, error) {
		c := combos[i]
		s := cfg.detectScenario(c.dev, c.depth, detectRate, true, cond)
		s.Respond = true
		p, err := core.RunDetection(s)
		if err != nil {
			return nil, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		ttd, resp := "-", "-"
		if p.Detected {
			ttd = fmt.Sprintf("%.0f", float64(p.TimeToDetect.Microseconds())/1e3)
		}
		if p.Converged {
			resp = fmt.Sprintf("%.0f", float64(p.ResponseTime.Microseconds())/1e3)
		}
		return []string{
			c.dev.String(), fmt.Sprintf("%d", c.depth), ttd,
			fmt.Sprintf("%d", p.ExposedAtDetect), resp,
			fmt.Sprintf("%d", p.ExposedAtConverge), fmt.Sprintf("%d", p.ExposedTotal),
			fmt.Sprintf("%d", p.FloodSent), detectNote(p),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title: fmt.Sprintf("Detection: Window of Exposure Under an Admitted %d pps Flood (responsive deny push)", detectRate),
		Columns: []string{"device", "depth", "detect (ms)", "exposed@detect",
			"response (ms)", "exposed@converge", "exposed total", "flood sent", "notes"},
		Rows: rows,
	}, nil
}

// DetectionChaos is the acceptance experiment for the telemetry plane
// itself: the same admitted-flood scenario on the ADF, with the
// management channel — shared by telemetry reports and the responsive
// push — degraded per condition. Telemetry loss delays the alert and
// the mitigation, and both time-to-detect and the window of exposure
// widen measurably.
func DetectionChaos(cfg Config) (*Table, error) {
	conds := detectConditions(cfg)

	rows, err := runner.Map(cfg.pool(), len(conds), func(i int) ([]string, error) {
		s := cfg.detectScenario(core.DeviceADF, 64, detectRate, true, conds[i])
		s.Respond = true
		p, err := core.RunDetection(s)
		if err != nil {
			return nil, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		ttd, resp := "-", "-"
		if p.Detected {
			ttd = fmt.Sprintf("%.0f", float64(p.TimeToDetect.Microseconds())/1e3)
		}
		if p.Converged {
			resp = fmt.Sprintf("%.0f", float64(p.ResponseTime.Microseconds())/1e3)
		}
		return []string{
			conds[i].label, ttd, fmt.Sprintf("%d", p.ExposedAtDetect),
			resp, fmt.Sprintf("%d", p.ExposedAtConverge),
			fmt.Sprintf("%d", p.Reports), fmt.Sprintf("%d", p.Gaps),
			fmt.Sprintf("%d", p.Corrupt), detectNote(p),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title: fmt.Sprintf("Detection Chaos: Telemetry Loss Widens Time-to-Detect and Exposure (ADF, %d pps admitted flood)", detectRate),
		Columns: []string{"mgmt channel", "detect (ms)", "exposed@detect",
			"response (ms)", "exposed@converge", "reports", "gaps", "corrupt", "notes"},
		Rows: rows,
	}, nil
}

// DetectionFalsePositives measures the detector's paging discipline:
// no flood at all, only benign on/off bursts from the client at
// increasing rates. A burst heavy enough to overload the card is
// indistinguishable from an attack at the card's counters — the
// interesting number is where that line sits for each device.
func DetectionFalsePositives(cfg Config) (*Table, error) {
	burstRates := []float64{1000, 4000, 12500}
	devs := []core.Device{core.DeviceEFW, core.DeviceADF}
	if cfg.Quick {
		devs = []core.Device{core.DeviceADF}
	}

	type task struct {
		dev  core.Device
		rate float64
	}
	var tasks []task
	for _, dev := range devs {
		for _, rate := range burstRates {
			tasks = append(tasks, task{dev: dev, rate: rate})
		}
	}

	rows, err := runner.Map(cfg.pool(), len(tasks), func(i int) ([]string, error) {
		t := tasks[i]
		s := cfg.detectScenario(t.dev, 64, 0, false, detectCondition{})
		s.BenignBurstPPS = t.rate
		p, err := core.RunDetection(s)
		if err != nil {
			return nil, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		return []string{
			t.dev.String(), fmt.Sprintf("%.0f", t.rate),
			fmt.Sprintf("%d", p.FalseAlerts), p.FinalState.String(),
			fmt.Sprintf("%d", p.Reports), detectNote(p),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Detection: False Positives Under Benign Bursty Traffic (500 ms on/off, no flood)",
		Columns: []string{"device", "burst (pps)", "false alerts", "final state", "reports", "notes"},
		Rows:    rows,
	}, nil
}

// fleetTable renders the collector's end-of-run health model.
func fleetTable(p core.DetectionPoint) *Table {
	t := &Table{
		Title:   "Fleet Health",
		Columns: []string{"device", "state", "reports", "gaps", "alerts", "last seen (s)"},
	}
	for _, d := range p.Fleet {
		last := "-"
		if d.LastSeen >= 0 {
			last = fmt.Sprintf("%.3f", d.LastSeen.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			d.Device, d.State.String(), fmt.Sprintf("%d", d.Reports),
			fmt.Sprintf("%d", d.Gaps), fmt.Sprintf("%d", d.Alerts), last,
		})
	}
	return t
}

// timelineMarkdown renders an alert timeline as a fixed-width text
// block.
func timelineMarkdown(label string, tl []telemetry.Transition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Alert timeline (%s):\n\n", label)
	if len(tl) == 0 {
		b.WriteString("    (no transitions)\n")
		return b.String()
	}
	for _, tr := range tl {
		signal := fmt.Sprintf("%.0f drops/s vs baseline %.1f", tr.Signal, tr.Baseline)
		if tr.Signal < 0 {
			signal = "silence (reports stale)"
		}
		fmt.Fprintf(&b, "    %8.3fs  %s -> %s  [%s]\n", tr.At.Seconds(), tr.From, tr.To, signal)
	}
	return b.String()
}

// FleetHealth runs the canonical detection scenario (ADF, depth 64,
// admitted flood, responsive push, clean management channel) and
// renders the collector's view of it: headline detection metrics, the
// fleet-health table, and the alert timeline. With cfg.MetricsDir set
// it also writes the table, timeline, and metric-snapshot artifacts.
func FleetHealth(cfg Config) (string, error) {
	s := cfg.detectScenario(core.DeviceADF, 64, detectRate, true, detectConditions(cfg)[0])
	s.Respond = true
	var reg *obs.Registry
	if cfg.MetricsDir != "" {
		reg = obs.NewRegistry()
		s.Metrics = reg
	}
	p, err := core.RunDetection(s)
	if err != nil {
		return "", err
	}
	cfg.account(1, p.SimSeconds, p.WallBusy)

	var b strings.Builder
	b.WriteString("# Fleet health & flood detection\n\n")
	fmt.Fprintf(&b, "scenario: %s depth %d, %g pps admitted flood from t=%.0fs, responsive deny push\n\n",
		p.Scenario.Device, p.Scenario.Depth, p.Scenario.FloodRatePPS, p.Scenario.FloodStart.Seconds())
	if p.Detected {
		fmt.Fprintf(&b, "time-to-detect:     %8.1f ms  (alert at %.3fs)\n",
			float64(p.TimeToDetect.Microseconds())/1e3, p.AlertAt.Seconds())
	} else {
		b.WriteString("time-to-detect:     not detected\n")
	}
	if p.Converged {
		fmt.Fprintf(&b, "response time:      %8.1f ms  (deny policy converged)\n",
			float64(p.ResponseTime.Microseconds())/1e3)
	} else {
		fmt.Fprintf(&b, "response time:      no converge %s\n", p.PushError)
	}
	fmt.Fprintf(&b, "window of exposure: %8d packets at detection\n", p.ExposedAtDetect)
	fmt.Fprintf(&b, "                    %8d packets at convergence\n", p.ExposedAtConverge)
	fmt.Fprintf(&b, "                    %8d packets total (of %d sent)\n", p.ExposedTotal, p.FloodSent)
	fmt.Fprintf(&b, "telemetry:          %d reports, %d gaps, %d corrupt, %d send failures\n\n",
		p.Reports, p.Gaps, p.Corrupt, p.AgentSendFails)

	fleet := fleetTable(p)
	b.WriteString(fleet.Markdown())
	b.WriteString("\n")
	b.WriteString(timelineMarkdown("target", p.Timeline))
	if len(p.ClientTimeline) > 0 {
		b.WriteString("\n")
		b.WriteString(timelineMarkdown("client (false positives)", p.ClientTimeline))
	}

	if cfg.MetricsDir != "" {
		dir := cfg.MetricsDir + "/fleet-health"
		if err := WriteTableArtifacts(dir, "fleet", fleet); err != nil {
			return "", err
		}
		if err := WriteAlertTimeline(dir, "target", p.Timeline); err != nil {
			return "", err
		}
		if _, err := obs.WriteRunArtifacts(dir, "fleet-health", reg, nil); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// WriteAlertTimeline writes an alert timeline as
// <dir>/<label>.timeline.{csv,json}.
func WriteAlertTimeline(dir, label string, tl []telemetry.Transition) error {
	writeCSV := func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"at_s", "from", "to", "signal_pps", "baseline_pps"}); err != nil {
			return err
		}
		for _, tr := range tl {
			err := cw.Write([]string{
				fmt.Sprintf("%g", tr.At.Seconds()), tr.From.String(), tr.To.String(),
				fmt.Sprintf("%g", tr.Signal), fmt.Sprintf("%g", tr.Baseline),
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	writeJSON := func(w io.Writer) error {
		type jsonTransition struct {
			AtSeconds float64 `json:"at_s"`
			From      string  `json:"from"`
			To        string  `json:"to"`
			Signal    float64 `json:"signal_pps"`
			Baseline  float64 `json:"baseline_pps"`
		}
		out := make([]jsonTransition, 0, len(tl))
		for _, tr := range tl {
			out = append(out, jsonTransition{
				AtSeconds: tr.At.Seconds(), From: tr.From.String(), To: tr.To.String(),
				Signal: tr.Signal, Baseline: tr.Baseline,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(out)
	}
	return writeArtifactPair(dir, label+".timeline", writeCSV, writeJSON)
}
