package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/measure"
)

// AppendixLatency (APX2) measures per-packet round-trip latency through
// each device as rule depth grows — the mechanism behind Table 1's
// ms/connect gradient, isolated from TCP. The paper argues the added
// latency "would hardly be noticeable for Internet service"; this table
// quantifies it.
func AppendixLatency(cfg Config) (*Table, error) {
	depths := []int{1, 8, 16, 32, 64}
	if cfg.Quick {
		depths = []int{1, 64}
	}
	devices := []core.Device{core.DeviceStandard, core.DeviceIPTables, core.DeviceEFW, core.DeviceADF}

	t := &Table{
		Title:   "Appendix APX2: ICMP round-trip time (ms, mean±stderr) vs rule-set depth",
		Columns: []string{"Rules"},
	}
	for _, d := range devices {
		t.Columns = append(t.Columns, d.String())
	}

	for _, depth := range depths {
		row := []string{fmt.Sprint(depth)}
		for _, dev := range devices {
			tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: dev, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			if dev != core.DeviceStandard {
				rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
				if err != nil {
					return nil, err
				}
				tb.InstallPolicy(tb.Target, rs)
			}
			res, err := measure.RunPingRTT(tb.Kernel, tb.Client, tb.Target, measure.PingConfig{})
			if err != nil {
				return nil, err
			}
			if res.Received == 0 {
				return nil, fmt.Errorf("latency %v depth %d: no echo replies", dev, depth)
			}
			row = append(row, fmt.Sprintf("%.3f±%.3f", res.RTTms.Mean(), res.RTTms.Stderr()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
