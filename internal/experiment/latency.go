package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/measure"
	"barbican/internal/runner"
)

// AppendixLatency (APX2) measures per-packet round-trip latency through
// each device as rule depth grows — the mechanism behind Table 1's
// ms/connect gradient, isolated from TCP. The paper argues the added
// latency "would hardly be noticeable for Internet service"; this table
// quantifies it. Every (depth, device) cell is an independent ping run
// and fans out over the executor.
func AppendixLatency(cfg Config) (*Table, error) {
	depths := []int{1, 8, 16, 32, 64}
	if cfg.Quick {
		depths = []int{1, 64}
	}
	devices := []core.Device{core.DeviceStandard, core.DeviceIPTables, core.DeviceEFW, core.DeviceADF}

	type task struct {
		depth int
		dev   core.Device
	}
	var tasks []task
	for _, depth := range depths {
		for _, dev := range devices {
			tasks = append(tasks, task{depth: depth, dev: dev})
		}
	}

	cells, err := runner.Map(cfg.pool(), len(tasks), func(i int) (string, error) {
		tk := tasks[i]
		tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: tk.dev, Seed: cfg.Seed})
		if err != nil {
			return "", err
		}
		if tk.dev != core.DeviceStandard {
			rs, err := fw.DepthRuleSet(tk.depth, fw.AllowAllRule(), fw.Deny)
			if err != nil {
				return "", err
			}
			tb.InstallPolicy(tb.Target, rs)
		}
		res, err := measure.RunPingRTT(tb.Kernel, tb.Client, tb.Target, measure.PingConfig{})
		if err != nil {
			return "", err
		}
		cfg.account(1, tb.Kernel.Now().Seconds(), tb.Kernel.WallBusy())
		if res.Received == 0 {
			return "", fmt.Errorf("latency %v depth %d: no echo replies", tk.dev, tk.depth)
		}
		return fmt.Sprintf("%.3f±%.3f", res.RTTms.Mean(), res.RTTms.Stderr()), nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Appendix APX2: ICMP round-trip time (ms, mean±stderr) vs rule-set depth",
		Columns: []string{"Rules"},
	}
	for _, d := range devices {
		t.Columns = append(t.Columns, d.String())
	}
	for di, depth := range depths {
		row := []string{fmt.Sprint(depth)}
		row = append(row, cells[di*len(devices):(di+1)*len(devices)]...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
