package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/obs/profile"
	"barbican/internal/runner"
)

// Fig2Depths are the rule-set depths of Figure 2's x axis.
var Fig2Depths = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}

// Fig2VPGDepths are the VPG counts of Figure 2's VPG series.
var Fig2VPGDepths = []int{1, 2, 3, 4}

// Fig2 reproduces Figure 2: available bandwidth as rules are added to
// the rule-set, for the EFW, ADF, ADF with VPGs, and iptables. Every
// (device, depth) point is independent, so the sweep fans out over the
// executor; points land back in their series in declaration order.
func Fig2(cfg Config) (*Figure, error) {
	depths := Fig2Depths
	vpgDepths := Fig2VPGDepths
	if cfg.Quick {
		depths = []int{1, 16, 64}
		vpgDepths = []int{1, 4}
	}

	devs := []core.Device{core.DeviceEFW, core.DeviceADF, core.DeviceIPTables}
	type task struct {
		series int
		dev    core.Device
		depth  int
	}
	var tasks []task
	for si, dev := range devs {
		for _, d := range depths {
			tasks = append(tasks, task{series: si, dev: dev, depth: d})
		}
	}
	for _, d := range vpgDepths {
		tasks = append(tasks, task{series: len(devs), dev: core.DeviceADFVPG, depth: d})
	}

	// Each point carries its cost profile back so the experiment-level
	// merge happens in task declaration order, independent of which
	// worker finished first.
	type result struct {
		point Point
		prof  *profile.Data
	}
	results, err := runner.Map(cfg.pool(), len(tasks), func(i int) (result, error) {
		t := tasks[i]
		label := fmt.Sprintf("%s_depth-%d", t.dev, t.depth)
		p, err := runObservedBandwidth(cfg, "fig2", label, core.Scenario{
			Device: t.dev, Depth: t.depth,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return result{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		return result{point: Point{X: float64(t.depth), Y: p.Mbps()}, prof: p.CostProfile}, nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.ProfileDir != "" {
		parts := make([]*profile.Data, 0, len(results))
		for _, r := range results {
			if r.prof != nil {
				parts = append(parts, r.prof)
			}
		}
		if err := writeMergedCostProfile(cfg, "fig2", parts); err != nil {
			return nil, err
		}
	}

	fig := &Figure{
		Title:  "Figure 2: Available Bandwidth as Rules Are Added to the Rule-Set",
		XLabel: "rules traversed",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, dev := range devs {
		fig.Series = append(fig.Series, Series{Label: dev.String()})
	}
	fig.Series = append(fig.Series, Series{Label: core.DeviceADFVPG.String()})
	for i, t := range tasks {
		s := &fig.Series[t.series]
		s.Points = append(s.Points, results[i].point)
	}
	return fig, nil
}
