package experiment

import (
	"fmt"

	"barbican/internal/core"
)

// Fig2Depths are the rule-set depths of Figure 2's x axis.
var Fig2Depths = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}

// Fig2VPGDepths are the VPG counts of Figure 2's VPG series.
var Fig2VPGDepths = []int{1, 2, 3, 4}

// Fig2 reproduces Figure 2: available bandwidth as rules are added to
// the rule-set, for the EFW, ADF, ADF with VPGs, and iptables.
func Fig2(cfg Config) (*Figure, error) {
	depths := Fig2Depths
	vpgDepths := Fig2VPGDepths
	if cfg.Quick {
		depths = []int{1, 16, 64}
		vpgDepths = []int{1, 4}
	}

	fig := &Figure{
		Title:  "Figure 2: Available Bandwidth as Rules Are Added to the Rule-Set",
		XLabel: "rules traversed",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, dev := range []core.Device{core.DeviceEFW, core.DeviceADF, core.DeviceIPTables} {
		s := Series{Label: dev.String()}
		for _, d := range depths {
			label := fmt.Sprintf("%s_depth-%d", dev, d)
			p, err := runObservedBandwidth(cfg, "fig2", label, core.Scenario{
				Device: dev, Depth: d,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(d), Y: p.Mbps()})
		}
		fig.Series = append(fig.Series, s)
	}

	vs := Series{Label: core.DeviceADFVPG.String()}
	for _, d := range vpgDepths {
		label := fmt.Sprintf("%s_depth-%d", core.DeviceADFVPG, d)
		p, err := runObservedBandwidth(cfg, "fig2", label, core.Scenario{
			Device: core.DeviceADFVPG, Depth: d,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		vs.Points = append(vs.Points, Point{X: float64(d), Y: p.Mbps()})
	}
	fig.Series = append(fig.Series, vs)
	return fig, nil
}
