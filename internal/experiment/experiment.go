// Package experiment regenerates every table and figure in the paper's
// evaluation: Figure 2 (available bandwidth vs. rule-set depth), Figure
// 3(a) (bandwidth under flood), Figure 3(b) (minimum denial-of-service
// flood rate), Table 1 (HTTP performance), plus the ablations called out
// in DESIGN.md.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"barbican/internal/faults"
	"barbican/internal/obs/profile"
	"barbican/internal/obs/tracing"
	"barbican/internal/runner"
)

// Point is one (x, y) measurement of a series.
type Point struct {
	X float64
	Y float64
	// Note carries per-point annotations (e.g. "LOCKUP").
	Note string
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a collection of series with shared axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats the figure as an aligned text table, series as columns.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s vs %s\n\n", f.YLabel, f.XLabel)

	// Collect the union of x values across series, in ascending order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)

	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %16s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12s", formatX(x))
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.1f", p.Y)
					if p.Note != "" {
						cell += " " + p.Note
					}
					break
				}
			}
			fmt.Fprintf(&b, "  %16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Config tunes experiment runtime vs. fidelity.
type Config struct {
	// Duration is the per-measurement window; zero uses each tool's
	// default (5 s bandwidth, 30 s HTTP).
	Duration time.Duration
	// Quick shrinks sweeps to a few representative points; used by unit
	// tests and smoke runs.
	Quick bool
	// Seed seeds every simulation; zero means 1.
	Seed int64
	// MetricsDir, when non-empty, attaches a flight recorder to each
	// simulation run and writes telemetry artifacts (Prometheus text,
	// JSON, CSV) plus figure/table data exports under this directory.
	MetricsDir string
	// SampleEvery is the flight-recorder tick in virtual time; zero
	// uses obs.DefaultSampleEvery.
	SampleEvery time.Duration
	// TraceDir, when non-empty, attaches a packet-lifecycle tracer to
	// each run and writes Perfetto trace_event JSON plus tcpdump-style
	// text logs under this directory.
	TraceDir string
	// TraceSample is the tracer's 1-in-N sampling rate; zero uses
	// tracing.DefaultSampleEvery.
	TraceSample int
	// ProfileDir, when non-empty, attaches the dual-domain profiler
	// (cost-unit card attribution + wall-clock kernel sampling) to
	// each run and writes pprof + folded-stack artifacts under this
	// directory, plus a merged per-experiment cost profile.
	ProfileDir string
	// ProfileSample is the kernel profiler's 1-in-N event sampling
	// rate; zero uses profile.DefaultKernelSampleEvery. The cost
	// domain is always exact.
	ProfileSample int
	// Parallel is the number of experiment points measured concurrently;
	// zero means runtime.GOMAXPROCS(0) and 1 runs points serially on the
	// calling goroutine. Every point owns a private simulation kernel and
	// results are reassembled in declaration order, so output is
	// byte-identical at any worker count.
	Parallel int
	// Account, when non-nil, accumulates point counts and sim/wall time
	// across every simulation the experiment runs.
	Account *Accounting
	// Faults, when non-nil, replaces the chaos experiments' default
	// management-channel condition sweep with this single plan (the
	// barbican -faults flag).
	Faults *faults.Plan
	// FaultSeed seeds the fault injectors; zero derives from each
	// scenario's simulation seed.
	FaultSeed int64
}

// pool returns the executor pool the configuration selects.
func (c Config) pool() runner.Pool { return runner.Pool{Workers: c.Parallel} }

// traceOptions returns the tracer options the configuration selects:
// disabled (zero value) unless TraceDir is set.
func (c Config) traceOptions() tracing.Options {
	if c.TraceDir == "" {
		return tracing.Options{}
	}
	n := c.TraceSample
	if n <= 0 {
		n = tracing.DefaultSampleEvery
	}
	return tracing.Options{SampleEvery: n}
}

// profileOptions returns the profiler options the configuration
// selects: nil (disabled) unless ProfileDir is set.
func (c Config) profileOptions() *profile.Options {
	if c.ProfileDir == "" {
		return nil
	}
	return &profile.Options{KernelSampleEvery: c.ProfileSample}
}

// account records one completed point's cost (or several, for searches
// that run many probes per point) when accounting is enabled.
func (c Config) account(points int, simSeconds float64, wallBusy time.Duration) {
	c.Account.Add(points, simSeconds, wallBusy)
}

func (c Config) bandwidthDuration() time.Duration {
	if c.Duration != 0 {
		return c.Duration
	}
	if c.Quick {
		return 1 * time.Second
	}
	return 5 * time.Second
}

// formatX renders an axis value: integers without decimals (rule
// depths, flood rates), fractional values (timeline seconds) compactly.
func formatX(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%.0f", x)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func (c Config) httpDuration() time.Duration {
	if c.Duration != 0 {
		return c.Duration
	}
	if c.Quick {
		return 2 * time.Second
	}
	return 30 * time.Second
}
