package experiment

import (
	"bytes"
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// renderEverything runs the paper's headline artifacts plus the NextGen
// depth/flood sweeps and renders markdown plus CSV for each — the byte
// stream the equivalence golden compares across worker counts.
func renderEverything(t *testing.T, cfg Config) []byte {
	t.Helper()
	var out bytes.Buffer

	fig2, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig3a, err := Fig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig3b, err := Fig3b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig2ng, err := Fig2NextGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig3ng, err := Fig3NextGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, fig := range []*Figure{fig2, fig3a, fig3b, fig2ng, fig3ng} {
		out.WriteString(fig.Markdown())
		if err := fig.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
	}
	out.WriteString(tab1.Markdown())
	if err := tab1.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParallelEquivalence is the executor's core contract: -parallel 1
// and -parallel 8 must produce byte-identical fig2/fig3a/fig3b/table1
// markdown and CSV artifacts. Every point owns a private kernel seeded
// from the scenario, warm-start chains live inside single tasks, and
// results reassemble in declaration order — so the only acceptable
// difference between worker counts is wall-clock time.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; skipped in -short")
	}
	base := Config{Quick: true, Duration: 300 * time.Millisecond}

	serialCfg := base
	serialCfg.Parallel = 1
	serial := renderEverything(t, serialCfg)

	parallelCfg := base
	parallelCfg.Parallel = 8
	parallel := renderEverything(t, parallelCfg)

	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hiS, hiP := max(0, i-80), min(len(serial), i+80), min(len(parallel), i+80)
		t.Fatalf("serial and parallel artifacts diverge at byte %d:\nserial:   …%q…\nparallel: …%q…",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}

// TestConcurrentPointsRace drives two experiment points through the
// executor at Workers=2 so the race detector (CI runs this file under
// -race) can observe any sharing between concurrently running kernels,
// testbeds, or scratch buffers.
func TestConcurrentPointsRace(t *testing.T) {
	points, err := runner.Map(runner.Pool{Workers: 2}, 2, func(i int) (core.BandwidthPoint, error) {
		return core.RunBandwidth(core.Scenario{
			Device: core.DeviceEFW, Depth: 1 + 63*i, // one cheap point, one deep one
			FloodRatePPS: 4000 * float64(i), FloodAllowed: true,
			Duration: 250 * time.Millisecond,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if p.Iperf.BytesReceived == 0 {
			t.Errorf("point %d moved no bytes", i)
		}
	}
}

// TestAccountingAccumulates checks that experiment runs feed the
// executor accounting: points, simulated seconds, and kernel wall time
// must all be positive after a sweep.
func TestAccountingAccumulates(t *testing.T) {
	var acct Accounting
	cfg := Config{Quick: true, Duration: 250 * time.Millisecond, Account: &acct}
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	points, simSecs, busy := acct.Totals()
	if points == 0 || simSecs <= 0 || busy <= 0 {
		t.Errorf("accounting empty after Fig2: points=%d sim=%.3f busy=%v", points, simSecs, busy)
	}
	// 11 quick points × (0.25 s window + 50 ms drain + handshakes).
	if simSecs < 2 {
		t.Errorf("sim seconds = %.3f, want ≥ 2", simSecs)
	}
}
