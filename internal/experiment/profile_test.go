package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"barbican/internal/obs/profile"
)

// fig2CostArtifacts runs the quick Fig. 2 sweep with profiling on and
// returns the bytes of the merged cost-domain artifacts.
func fig2CostArtifacts(t *testing.T, parallel int) (pprofBytes, foldedBytes []byte) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		Quick:      true,
		Duration:   200 * time.Millisecond,
		Parallel:   parallel,
		ProfileDir: dir,
	}
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	pprofBytes, err := os.ReadFile(filepath.Join(dir, "fig2", "fig2.cost.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	foldedBytes, err = os.ReadFile(filepath.Join(dir, "fig2", "fig2.cost.folded"))
	if err != nil {
		t.Fatal(err)
	}
	return pprofBytes, foldedBytes
}

// TestFig2CostProfileParallelByteIdentity is the determinism golden:
// the cost domain is exact (every admitted packet recorded, per-point
// private kernels, merge in declaration order), so the merged Fig. 2
// profile must be byte-identical at any -parallel setting. Wall-domain
// kernel profiles are excluded — their nanosecond values are measured.
func TestFig2CostProfileParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full profiled sweep; skipped in -short")
	}
	p1, f1 := fig2CostArtifacts(t, 1)
	p4, f4 := fig2CostArtifacts(t, 4)
	if !bytes.Equal(f1, f4) {
		t.Error("fig2.cost.folded differs between -parallel 1 and 4")
	}
	if !bytes.Equal(p1, p4) {
		t.Error("fig2.cost.pprof differs between -parallel 1 and 4")
	}
}

// TestFig2CostProfileContent checks the ISSUE's attribution criteria on
// a real sweep: the profile decodes, phases carry the bulk of the
// units, and per-rule match cost is visibly linear in rule depth.
func TestFig2CostProfileContent(t *testing.T) {
	if testing.Short() {
		t.Skip("full profiled sweep; skipped in -short")
	}
	pprofBytes, foldedBytes := fig2CostArtifacts(t, 2)

	d, err := profile.ReadPprof(bytes.NewReader(pprofBytes))
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() == 0 {
		t.Fatal("merged cost profile is empty")
	}
	// Every sample belongs to a named phase.
	phases := map[string]int64{}
	for _, s := range d.Samples {
		if len(s.Stack) < 3 {
			t.Fatalf("cost stack too shallow: %v", s.Stack)
		}
		phases[s.Stack[2]] += s.Values[0]
	}
	for name := range phases {
		switch name {
		case "parse", "match", "crypto.seal", "crypto.open", "verdict":
		default:
			t.Errorf("unknown phase frame %q", name)
		}
	}
	if phases["match"] == 0 || phases["parse"] == 0 {
		t.Errorf("phase rollup missing parse/match units: %v", phases)
	}

	// Per-rule linearity: on the EFW target rx side, rule 1 is examined
	// by every filtered packet; deeper rules by monotonically fewer or
	// equal (depth-1 sweeps never reach rule 16, 64-rule sweeps do).
	// Collect per-rule examined counts for the EFW target card.
	perRule := map[string]int64{}
	for _, s := range d.Samples {
		if len(s.Stack) == 4 && strings.Contains(s.Stack[0], "EFW") &&
			s.Stack[1] == "rx" && s.Stack[2] == "match" {
			perRule[s.Stack[3]] += s.Values[1]
		}
	}
	if len(perRule) == 0 {
		t.Fatal("no per-rule EFW match samples in merged profile")
	}
	// Sum across frames: the same rule index carries different DSL text
	// in different depth configurations (pad vs action rule), so "rule
	// 001" appears as several distinct frames.
	rule := func(frame string) int64 {
		var total int64
		for f, v := range perRule {
			if strings.HasPrefix(f, frame) {
				total += v
			}
		}
		return total
	}
	r1, r16, r64 := rule("rule 001"), rule("rule 016"), rule("rule 064")
	if !(r1 >= r16 && r16 >= r64 && r1 > 0) {
		t.Errorf("per-rule examined counts not monotone in depth: r1=%d r16=%d r64=%d", r1, r16, r64)
	}
	// Quick mode sweeps depths {1,16,64}: rule 1 sees all three
	// configurations' traffic, rule 16 only two, rule 64 only one — the
	// linear-in-depth structure must be strict, not degenerate.
	if !(r1 > r16 && r16 > r64 && r64 > 0) {
		t.Errorf("depth sweep structure missing from rule counts: r1=%d r16=%d r64=%d", r1, r16, r64)
	}

	// The folded artifact parses back and agrees on the total.
	fd, err := profile.ParseFolded(bytes.NewReader(foldedBytes), profile.ValueType{Type: "cost", Unit: "units"})
	if err != nil {
		t.Fatal(err)
	}
	if fd.Total() != d.Total() {
		// Folded skips zero-weight samples, which carry no cost by
		// definition — totals must still agree.
		t.Errorf("folded total %d != pprof total %d", fd.Total(), d.Total())
	}
}
