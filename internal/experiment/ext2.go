package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// ExtensionHTTPUnderFlood (EXT2) combines Table 1 and Figure 3(a): what
// happens to an interactive service behind the card while an attack is
// in progress? The paper measures raw bandwidth under flood and web
// performance separately; a deployer wants the cross product. Every
// (rate, device) cell is one independent HTTP load run and fans out
// over the executor.
func ExtensionHTTPUnderFlood(cfg Config) (*Table, error) {
	rates := []float64{0, 2000, 4000, 6000}
	if cfg.Quick {
		rates = []float64{0, 4000}
	}
	devices := []core.Device{core.DeviceStandard, core.DeviceEFW}

	type task struct {
		rate  float64
		dev   core.Device
		depth int
	}
	var tasks []task
	for _, rate := range rates {
		for _, dev := range devices {
			depth := 64
			if dev == core.DeviceStandard {
				depth = 0
			}
			tasks = append(tasks, task{rate: rate, dev: dev, depth: depth})
		}
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (core.HTTPPoint, error) {
		t := tasks[i]
		p, err := core.RunHTTP(core.Scenario{
			Device: t.dev, Depth: t.depth,
			FloodRatePPS: t.rate, FloodAllowed: true,
			Duration: cfg.httpDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return core.HTTPPoint{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Extension EXT2: web-server performance during a flood (64-rule policy, flood allowed)",
		Columns: []string{"Flood (pps)"},
	}
	for _, d := range devices {
		t.Columns = append(t.Columns, d.String()+" fetches/s", d.String()+" ms/connect")
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%.0f", rate)}
		for di := range devices {
			p := points[ri*len(devices)+di]
			row = append(row,
				fmt.Sprintf("%.1f", p.Load.FetchesPerSec),
				fmt.Sprintf("%.2f", p.Load.ConnectMs.Mean()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
