package experiment

import (
	"strings"
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/measure"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

func rfcPoint(t *testing.T, device core.Device, depth, frameSize int) measure.ThroughputResult {
	t.Helper()
	res, err := rfc2544Point(Config{Quick: true}, device, depth, frameSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRFC2544StandardNICIsLineRate(t *testing.T) {
	for _, size := range []int{64, 1518} {
		res := rfcPoint(t, core.DeviceStandard, 0, size)
		if !res.LineRateLimited {
			t.Errorf("standard NIC at %dB not line-rate limited: %+v", size, res)
		}
	}
	// Medium maxima: ≈148,810 fps at 64B and ≈8,127 fps at 1518B.
	small := rfcPoint(t, core.DeviceStandard, 0, 64)
	if small.FramesPerSec < 140_000 {
		t.Errorf("64B line rate = %.0f fps, want ≈148,810", small.FramesPerSec)
	}
	big := rfcPoint(t, core.DeviceStandard, 0, 1518)
	if big.FramesPerSec < 8_000 || big.FramesPerSec > 8_300 {
		t.Errorf("1518B line rate = %.0f fps, want ≈8,127", big.FramesPerSec)
	}
}

func TestRFC2544EFWSmallFrameCeiling(t *testing.T) {
	// The paper's §4.1 argument: a firewall that carries full bandwidth
	// at 1518B frames may be far below the medium's small-frame rate.
	big := rfcPoint(t, core.DeviceEFW, 1, 1518)
	if !big.LineRateLimited {
		t.Errorf("EFW-1 at 1518B should reach line rate: %+v", big)
	}
	small := rfcPoint(t, core.DeviceEFW, 1, 64)
	if small.LineRateLimited {
		t.Error("EFW-1 at 64B reported line rate; the card must be the bottleneck")
	}
	// One-way ingress capacity at 1 rule ≈ 24,600 fps.
	if small.FramesPerSec < 20_000 || small.FramesPerSec > 28_000 {
		t.Errorf("EFW-1 64B ceiling = %.0f fps, want ≈24,600", small.FramesPerSec)
	}
}

func TestRFC2544DepthLowersCeiling(t *testing.T) {
	shallow := rfcPoint(t, core.DeviceEFW, 1, 64)
	deep := rfcPoint(t, core.DeviceEFW, 64, 64)
	if deep.FramesPerSec >= shallow.FramesPerSec {
		t.Errorf("64-rule ceiling (%.0f) not below 1-rule ceiling (%.0f)",
			deep.FramesPerSec, shallow.FramesPerSec)
	}
}

func TestAppendixRFC2544Table(t *testing.T) {
	tab, err := AppendixRFC2544(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	for _, want := range []string{"RFC 2544", "Frame size", "64", "1518", "line rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAppendixLatencyTable(t *testing.T) {
	tab, err := AppendixLatency(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Columns) != 5 {
		t.Fatalf("table shape = %dx%d", len(tab.Rows), len(tab.Columns))
	}
	if !strings.Contains(tab.Render(), "round-trip") {
		t.Error("render missing title")
	}
}

func TestZeroLossThroughputSyntheticDevice(t *testing.T) {
	// A synthetic device that drops everything above 5,000 fps: the
	// search must find ≈5,000.
	trial := func(rate float64) (uint64, uint64, error) {
		sent := uint64(rate * 2)
		received := sent
		if rate > 5000 {
			received = uint64(5000 * 2)
		}
		return sent, received, nil
	}
	res, err := measure.ZeroLossThroughput(measure.ThroughputConfig{FrameSize: 64}, 20000, trial)
	if err != nil {
		t.Fatal(err)
	}
	if res.LineRateLimited {
		t.Error("synthetic bottleneck reported line rate")
	}
	if res.FramesPerSec < 4700 || res.FramesPerSec > 5100 {
		t.Errorf("found %.0f fps, want ≈5000", res.FramesPerSec)
	}
}

// Keep the helper imports honest: rfc2544Point must build fresh pairs.
func TestHostThroughputTrialIndependence(t *testing.T) {
	builds := 0
	cfg := measure.ThroughputConfig{FrameSize: 256, TrialDuration: 200 * time.Millisecond}
	trial := measure.HostThroughputTrial(cfg, func() (*sim.Kernel, *stack.Host, *stack.Host, error) {
		builds++
		tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
		if err != nil {
			return nil, nil, nil, err
		}
		rs, err := fw.DepthRuleSet(8, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			return nil, nil, nil, err
		}
		tb.InstallPolicy(tb.Target, rs)
		return tb.Kernel, tb.Client, tb.Target, nil
	})
	if _, err := measure.ZeroLossThroughput(cfg, link.MaxFrameRate(238, link.Rate100Mbps), trial); err != nil {
		t.Fatal(err)
	}
	if builds < 2 {
		t.Errorf("only %d testbeds built; trials must be independent", builds)
	}
}
