package experiment

import (
	"fmt"
	"time"

	"barbican/internal/core"
	"barbican/internal/faults"
	"barbican/internal/policy"
	"barbican/internal/runner"
)

// chaosPartition is the management-channel outage the chaos family
// uses: it opens just before the push fires and lifts 1.5 s later, so
// convergence requires surviving the window.
var chaosPartition = faults.Plan{Down: []faults.Window{{From: 900 * time.Millisecond, To: 2500 * time.Millisecond}}}

// chaosPushAt is when the mitigating policy push starts.
const chaosPushAt = time.Second

// chaosCondition is one management-channel state under test.
type chaosCondition struct {
	label string
	plan  faults.Plan
	push  policy.PushOptions
}

// chaosConditions returns the management-channel sweep: clean, lossy,
// partitioned, and the partitioned channel with the legacy single-shot
// push (no retries) that stalls forever. With cfg.Faults set (the
// -faults flag), the sweep collapses to that single custom plan.
func chaosConditions(cfg Config) []chaosCondition {
	if cfg.Faults != nil {
		return []chaosCondition{{label: "faults " + cfg.Faults.String(), plan: *cfg.Faults}}
	}
	conds := []chaosCondition{
		{label: "clean mgmt"},
		{label: "mgmt loss 10%", plan: faults.Plan{Loss: 0.10}},
		{label: "mgmt loss 30%", plan: faults.Plan{Loss: 0.30}},
		{label: "mgmt partition", plan: chaosPartition},
		{label: "partition, no retry", plan: chaosPartition, push: policy.PushOptions{MaxAttempts: 1}},
	}
	if cfg.Quick {
		conds = []chaosCondition{conds[0], conds[2], conds[3], conds[4]}
	}
	return conds
}

func (c Config) chaosDuration() time.Duration {
	if c.Duration != 0 {
		return c.Duration
	}
	if c.Quick {
		return 4 * time.Second
	}
	return 8 * time.Second
}

func (c Config) chaosScenario(dev core.Device, rate float64, cond chaosCondition) core.ChaosScenario {
	return core.ChaosScenario{
		Device:       dev,
		FloodRatePPS: rate,
		MgmtFaults:   cond.plan,
		FaultSeed:    c.FaultSeed,
		Seed:         c.Seed,
		PushAt:       chaosPushAt,
		Duration:     c.chaosDuration(),
		Push:         cond.push,
	}
}

// ChaosBandwidth extends Figure 3(a) to a faulty management channel:
// available bandwidth vs flood rate on the ADF, with the mitigating
// deny-flood policy pushed at t=1s over each management-channel
// condition. Where the push cannot converge (the legacy single-shot
// series through a partition), the flood keeps hitting the stack and
// the point is annotated.
func ChaosBandwidth(cfg Config) (*Figure, error) {
	rates := []float64{0, 2000, 4000, 8000, 12500}
	if cfg.Quick {
		rates = []float64{0, 2000, 8000}
	}
	conds := chaosConditions(cfg)

	type task struct {
		series int
		rate   float64
		cond   chaosCondition
	}
	var tasks []task
	for si, cond := range conds {
		for _, rate := range rates {
			tasks = append(tasks, task{series: si, rate: rate, cond: cond})
		}
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (Point, error) {
		t := tasks[i]
		p, err := core.RunChaos(cfg.chaosScenario(core.DeviceADF, t.rate, t.cond))
		if err != nil {
			return Point{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		pt := Point{X: t.rate, Y: p.Mbps()}
		switch {
		case p.TargetLocked:
			pt.Note = "LOCKUP"
		case !p.Converged:
			pt.Note = "no converge"
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Chaos: Available Bandwidth During Flood, Policy Pushed Over a Faulty Management Channel (ADF)",
		XLabel: "flood rate (packets/s)",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, cond := range conds {
		fig.Series = append(fig.Series, Series{Label: cond.label})
	}
	for i, t := range tasks {
		fig.Series[t.series].Points = append(fig.Series[t.series].Points, points[i])
	}
	return fig, nil
}

// ChaosConvergence measures the policy plane itself: how long the push
// takes to land (and how many attempts it burns) under each
// management-channel condition, per device, with the data plane under
// a 2,000 pps flood.
func ChaosConvergence(cfg Config) (*Table, error) {
	devs := []core.Device{core.DeviceEFW, core.DeviceADF}
	if cfg.Quick {
		devs = []core.Device{core.DeviceADF}
	}
	conds := chaosConditions(cfg)

	type task struct {
		dev  core.Device
		cond chaosCondition
	}
	var tasks []task
	for _, dev := range devs {
		for _, cond := range conds {
			tasks = append(tasks, task{dev: dev, cond: cond})
		}
	}

	rows, err := runner.Map(cfg.pool(), len(tasks), func(i int) ([]string, error) {
		t := tasks[i]
		p, err := core.RunChaos(cfg.chaosScenario(t.dev, 2000, t.cond))
		if err != nil {
			return nil, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		converged := "no"
		convergeMS := "-"
		if p.Converged {
			converged = "yes"
			convergeMS = fmt.Sprintf("%.0f", float64(p.ConvergeTime.Microseconds())/1e3)
		}
		note := p.PushError
		if p.TargetLocked {
			if note != "" {
				note += "; "
			}
			note += "LOCKUP"
		}
		return []string{
			t.dev.String(), t.cond.label, converged, convergeMS,
			fmt.Sprintf("%d", p.Server.Attempts), fmt.Sprintf("%d", p.Server.Retries),
			fmt.Sprintf("%.1f", p.Mbps()), note,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return &Table{
		Title:   "Chaos: Policy Convergence Over a Faulty Management Channel (2,000 pps flood)",
		Columns: []string{"device", "mgmt channel", "converged", "converge (ms)", "attempts", "retries", "bandwidth (Mbps)", "notes"},
		Rows:    rows,
	}, nil
}
