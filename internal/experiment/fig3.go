package experiment

import (
	"fmt"

	"barbican/internal/core"
)

// Fig3aRates are the flood rates of Figure 3(a)'s x axis.
var Fig3aRates = []float64{0, 2000, 4000, 6000, 8000, 10000, 12500}

// Fig3a reproduces Figure 3(a): available bandwidth during a packet
// flood with a single-rule rule-set, for no firewall, iptables, EFW,
// ADF, and ADF with a VPG.
func Fig3a(cfg Config) (*Figure, error) {
	rates := Fig3aRates
	if cfg.Quick {
		rates = []float64{0, 8000, 12500}
	}
	fig := &Figure{
		Title:  "Figure 3(a): Available Bandwidth During Packet Flood (single-rule rule-set)",
		XLabel: "flood rate (packets/s)",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, dev := range []core.Device{
		core.DeviceStandard, core.DeviceIPTables, core.DeviceEFW, core.DeviceADF, core.DeviceADFVPG,
	} {
		depth := 1
		if dev == core.DeviceStandard {
			depth = 0 // "No Firewall"
		}
		label := dev.String()
		if dev == core.DeviceStandard {
			label = "No Firewall"
		}
		s := Series{Label: label}
		for _, rate := range rates {
			runLabel := fmt.Sprintf("%s_rate-%.0f", label, rate)
			p, err := runObservedBandwidth(cfg, "fig3a", runLabel, core.Scenario{
				Device: dev, Depth: depth,
				FloodRatePPS: rate, FloodAllowed: true,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			pt := Point{X: rate, Y: p.Mbps()}
			if p.TargetLocked {
				pt.Note = "LOCKUP"
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3bDepths are the rule depths of Figure 3(b)'s x axis.
var Fig3bDepths = []int{1, 8, 16, 32, 64}

// Fig3bClass names one series of Figure 3(b).
type Fig3bClass struct {
	Device  core.Device
	Allowed bool
}

// Label renders the class as the paper labels it.
func (c Fig3bClass) Label() string {
	mode := "Deny"
	if c.Allowed {
		mode = "Allow"
	}
	return fmt.Sprintf("%s (%s)", c.Device, mode)
}

// Fig3bClasses are the paper's series: the EFW (Deny) series is included
// so the run documents the lockup that prevented the authors from
// capturing it.
var Fig3bClasses = []Fig3bClass{
	{Device: core.DeviceEFW, Allowed: true},
	{Device: core.DeviceADF, Allowed: true},
	{Device: core.DeviceADF, Allowed: false},
	{Device: core.DeviceEFW, Allowed: false},
}

// Fig3b reproduces Figure 3(b): the minimum flood rate required to cause
// denial of service as rule-set depth increases, with the flood packets
// allowed or denied by the policy.
func Fig3b(cfg Config) (*Figure, error) {
	depths := Fig3bDepths
	classes := Fig3bClasses
	if cfg.Quick {
		depths = []int{1, 64}
		classes = []Fig3bClass{
			{Device: core.DeviceEFW, Allowed: true},
			{Device: core.DeviceADF, Allowed: false},
		}
	}
	fig := &Figure{
		Title:  "Figure 3(b): Minimum Denial-of-Service Flood Rate vs Rule-Set Depth",
		XLabel: "rules traversed before action",
		YLabel: "minimum flood rate (packets/s)",
	}
	for _, class := range classes {
		s := Series{Label: class.Label()}
		for _, d := range depths {
			r, err := core.MinFloodRate(core.Scenario{
				Device: class.Device, Depth: d, FloodAllowed: class.Allowed,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			pt := Point{X: float64(d)}
			switch {
			case !r.Found:
				pt.Note = "no DoS found"
			case r.LockedUp:
				pt.Y = r.RatePPS
				pt.Note = "LOCKUP"
			default:
				pt.Y = r.RatePPS
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
