package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// Fig3aRates are the flood rates of Figure 3(a)'s x axis.
var Fig3aRates = []float64{0, 2000, 4000, 6000, 8000, 10000, 12500}

// Fig3a reproduces Figure 3(a): available bandwidth during a packet
// flood with a single-rule rule-set, for no firewall, iptables, EFW,
// ADF, and ADF with a VPG. Every (device, rate) point is independent
// and fans out over the executor.
func Fig3a(cfg Config) (*Figure, error) {
	rates := Fig3aRates
	if cfg.Quick {
		rates = []float64{0, 8000, 12500}
	}

	devs := []core.Device{
		core.DeviceStandard, core.DeviceIPTables, core.DeviceEFW, core.DeviceADF, core.DeviceADFVPG,
	}
	type task struct {
		series int
		label  string
		dev    core.Device
		depth  int
		rate   float64
	}
	var tasks []task
	for si, dev := range devs {
		depth := 1
		label := dev.String()
		if dev == core.DeviceStandard {
			depth = 0 // "No Firewall"
			label = "No Firewall"
		}
		for _, rate := range rates {
			tasks = append(tasks, task{series: si, label: label, dev: dev, depth: depth, rate: rate})
		}
	}

	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (Point, error) {
		t := tasks[i]
		runLabel := fmt.Sprintf("%s_rate-%.0f", t.label, t.rate)
		p, err := runObservedBandwidth(cfg, "fig3a", runLabel, core.Scenario{
			Device: t.dev, Depth: t.depth,
			FloodRatePPS: t.rate, FloodAllowed: true,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return Point{}, err
		}
		cfg.account(1, p.SimSeconds, p.WallBusy)
		pt := Point{X: t.rate, Y: p.Mbps()}
		if p.TargetLocked {
			pt.Note = "LOCKUP"
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Figure 3(a): Available Bandwidth During Packet Flood (single-rule rule-set)",
		XLabel: "flood rate (packets/s)",
		YLabel: "available bandwidth (Mbps)",
	}
	for _, dev := range devs {
		label := dev.String()
		if dev == core.DeviceStandard {
			label = "No Firewall"
		}
		fig.Series = append(fig.Series, Series{Label: label})
	}
	for i, t := range tasks {
		fig.Series[t.series].Points = append(fig.Series[t.series].Points, points[i])
	}
	return fig, nil
}

// Fig3bDepths are the rule depths of Figure 3(b)'s x axis.
var Fig3bDepths = []int{1, 8, 16, 32, 64}

// Fig3bClass names one series of Figure 3(b).
type Fig3bClass struct {
	Device  core.Device
	Allowed bool
}

// Label renders the class as the paper labels it.
func (c Fig3bClass) Label() string {
	mode := "Deny"
	if c.Allowed {
		mode = "Allow"
	}
	return fmt.Sprintf("%s (%s)", c.Device, mode)
}

// Fig3bClasses are the paper's series: the EFW (Deny) series is included
// so the run documents the lockup that prevented the authors from
// capturing it.
var Fig3bClasses = []Fig3bClass{
	{Device: core.DeviceEFW, Allowed: true},
	{Device: core.DeviceADF, Allowed: true},
	{Device: core.DeviceADF, Allowed: false},
	{Device: core.DeviceEFW, Allowed: false},
}

// Fig3b reproduces Figure 3(b): the minimum flood rate required to cause
// denial of service as rule-set depth increases, with the flood packets
// allowed or denied by the policy.
//
// Each class (device × allow/deny) is one executor task; within a
// class, depths run sequentially so each search warm-starts from the
// neighboring depth's threshold — adjacent depths have nearby DoS
// rates, so galloping out from the previous answer replaces the full
// cold bracket. Keeping the warm-start chain inside one task means the
// probe sequence is identical at any worker count.
func Fig3b(cfg Config) (*Figure, error) {
	depths := Fig3bDepths
	classes := Fig3bClasses
	if cfg.Quick {
		depths = []int{1, 64}
		classes = []Fig3bClass{
			{Device: core.DeviceEFW, Allowed: true},
			{Device: core.DeviceADF, Allowed: false},
		}
	}

	series, err := runner.Map(cfg.pool(), len(classes), func(ci int) (Series, error) {
		class := classes[ci]
		s := Series{Label: class.Label()}
		hint := 0.0
		for _, d := range depths {
			r, err := core.MinFloodRateFrom(core.Scenario{
				Device: class.Device, Depth: d, FloodAllowed: class.Allowed,
				Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
			}, hint)
			if err != nil {
				return Series{}, err
			}
			cfg.account(r.Probes, r.SimSeconds, r.WallBusy)
			pt := Point{X: float64(d)}
			switch {
			case !r.Found:
				pt.Note = "no DoS found"
				hint = 0
			case r.LockedUp:
				pt.Y = r.RatePPS
				pt.Note = "LOCKUP"
				hint = r.RatePPS
			default:
				pt.Y = r.RatePPS
				hint = r.RatePPS
			}
			s.Points = append(s.Points, pt)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Figure 3(b): Minimum Denial-of-Service Flood Rate vs Rule-Set Depth",
		XLabel: "rules traversed before action",
		YLabel: "minimum flood rate (packets/s)",
		Series: series,
	}
	return fig, nil
}
