package experiment

import (
	"strings"
	"testing"
)

var quick = Config{Quick: true}

func TestFig2QuickShape(t *testing.T) {
	fig, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	byLabel := map[string][]Point{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Points
	}
	efw := byLabel["EFW"]
	if efw[0].Y < 90 {
		t.Errorf("EFW at depth 1 = %.1f, want >90", efw[0].Y)
	}
	last := efw[len(efw)-1]
	if last.Y > 60 || last.Y < 40 {
		t.Errorf("EFW at depth 64 = %.1f, want ≈50", last.Y)
	}
	ipt := byLabel["iptables"]
	if ipt[len(ipt)-1].Y < 90 {
		t.Errorf("iptables at depth 64 = %.1f, want >90", ipt[len(ipt)-1].Y)
	}
	adf := byLabel["ADF"]
	if adf[len(adf)-1].Y >= last.Y {
		t.Errorf("ADF (%.1f) not below EFW (%.1f) at 64 rules", adf[len(adf)-1].Y, last.Y)
	}

	out := fig.Render()
	for _, want := range []string{"Figure 2", "EFW", "ADF (VPG)", "iptables"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig3aQuickShape(t *testing.T) {
	fig, err := Fig3a(quick)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Point{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Points
	}
	nofw := byLabel["No Firewall"]
	if nofw[len(nofw)-1].Y < 70 {
		t.Errorf("No Firewall at 12.5k pps = %.1f, want ≥70", nofw[len(nofw)-1].Y)
	}
	efw := byLabel["EFW"]
	if efw[len(efw)-1].Y > 5 {
		t.Errorf("EFW at 12.5k pps = %.1f, want ≈0", efw[len(efw)-1].Y)
	}
	if efw[0].Y < 90 {
		t.Errorf("EFW with no flood = %.1f, want >90", efw[0].Y)
	}
}

func TestFig3bQuickShape(t *testing.T) {
	fig, err := Fig3b(quick)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Point{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Points
	}
	efwAllow := byLabel["EFW (Allow)"]
	if len(efwAllow) != 2 {
		t.Fatalf("EFW (Allow) points = %d", len(efwAllow))
	}
	if efwAllow[1].Y >= efwAllow[0].Y {
		t.Errorf("min flood rate did not decline with depth: %v", efwAllow)
	}
	adfDeny := byLabel["ADF (Deny)"]
	if adfDeny[1].Y <= efwAllow[1].Y {
		t.Errorf("ADF deny (%.0f) not above EFW allow (%.0f) at depth 64", adfDeny[1].Y, efwAllow[1].Y)
	}
}

func TestTable1QuickShape(t *testing.T) {
	tab, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 5 { // Experiment, Standard, ADF 1, ADF 64, VPG 1
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"HTTP Fetches/s", "ms/connect", "ms/first-response", "Standard NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	abl1, err := AblationDenyResponses(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl1.Rows) != 2 {
		t.Errorf("ABL1 rows = %d", len(abl1.Rows))
	}
	abl2, err := AblationVPGLazyDecrypt(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl2.Rows) != 2 {
		t.Errorf("ABL2 rows = %d", len(abl2.Rows))
	}
	abl3, err := AblationTrailingRules(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl3.Rows) != 2 {
		t.Errorf("ABL3 rows = %d", len(abl3.Rows))
	}
}

func TestFigureRenderAlignsMissingCells(t *testing.T) {
	fig := &Figure{
		Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}}},
			{Label: "b", Points: []Point{{X: 3, Y: 4, Note: "LOCKUP"}}},
		},
	}
	out := fig.Render()
	if !strings.Contains(out, "LOCKUP") {
		t.Errorf("render lost note:\n%s", out)
	}
}

func TestMarkdownRenderers(t *testing.T) {
	fig := &Figure{
		Title: "F", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 2, Y: 1}, {X: 1, Y: 3}}},
			{Label: "b", Points: []Point{{X: 1, Y: 4, Note: "LOCKUP"}}},
		},
	}
	md := fig.Markdown()
	for _, want := range []string{"**F**", "| a | b |", "**LOCKUP**", "—"} {
		if !strings.Contains(md, want) {
			t.Errorf("figure markdown missing %q:\n%s", want, md)
		}
	}
	// x values sorted ascending.
	if strings.Index(md, "| 1 |") > strings.Index(md, "| 2 |") {
		t.Error("x values not sorted in markdown")
	}
	tab := &Table{Title: "T", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if !strings.Contains(tab.Markdown(), "| a | b |") {
		t.Errorf("table markdown:\n%s", tab.Markdown())
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("Fig2 not deterministic across runs")
	}
}

func TestExtensionTablesQuick(t *testing.T) {
	ext2, err := ExtensionHTTPUnderFlood(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext2.Rows) != 2 {
		t.Errorf("EXT2 rows = %d", len(ext2.Rows))
	}
	ext1, err := ExtensionNextGen(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext1.Rows) != 3 {
		t.Errorf("EXT1 rows = %d", len(ext1.Rows))
	}
}
