package experiment

import (
	"fmt"

	"barbican/internal/core"
	"barbican/internal/runner"
)

// runAccountedBandwidth is core.RunBandwidth plus executor accounting —
// the shared body of the ablation points.
func runAccountedBandwidth(cfg Config, s core.Scenario) (core.BandwidthPoint, error) {
	p, err := core.RunBandwidth(s)
	if err != nil {
		return p, err
	}
	cfg.account(1, p.SimSeconds, p.WallBusy)
	return p, nil
}

// AblationDenyResponses (ABL1) quantifies the paper's explanation for
// the deny-vs-allow doubling: allowed flood packets elicit victim
// responses that transit the card outbound. It measures bandwidth under
// a fixed allowed flood with responses on and off.
func AblationDenyResponses(cfg Config) (*Table, error) {
	const rate = 9000
	run := func(suppress bool) func() (core.BandwidthPoint, error) {
		return func() (core.BandwidthPoint, error) {
			return runAccountedBandwidth(cfg, core.Scenario{
				Device: core.DeviceEFW, Depth: 1,
				FloodRatePPS: rate, FloodAllowed: true,
				SuppressFloodResponses: suppress,
				Duration:               cfg.bandwidthDuration(), Seed: cfg.Seed,
			})
		}
	}
	points, err := runner.Funcs(cfg.pool(), run(false), run(true))
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "Ablation ABL1: victim responses double the card's flood load (EFW, 1 rule, 9,000 pps allowed flood)",
		Columns: []string{"Victim responses", "Available bandwidth (Mbps)"},
		Rows: [][]string{
			{"enabled (real stacks)", fmt.Sprintf("%.1f", points[0].Mbps())},
			{"suppressed", fmt.Sprintf("%.1f", points[1].Mbps())},
		},
	}, nil
}

// AblationVPGLazyDecrypt (ABL2) validates the paper's §4.1 observation:
// the ADF does not decrypt until the matching VPG rule, so non-matching
// VPGs above the action pair are nearly free. Eager decryption would
// make them expensive.
func AblationVPGLazyDecrypt(cfg Config) (*Table, error) {
	depths := []int{1, 4}
	if !cfg.Quick {
		depths = []int{1, 2, 3, 4}
	}
	type task struct {
		depth int
		eager bool
	}
	var tasks []task
	for _, d := range depths {
		tasks = append(tasks, task{depth: d}, task{depth: d, eager: true})
	}
	points, err := runner.Map(cfg.pool(), len(tasks), func(i int) (core.BandwidthPoint, error) {
		return runAccountedBandwidth(cfg, core.Scenario{
			Device: core.DeviceADFVPG, Depth: tasks[i].depth,
			EagerVPGDecrypt: tasks[i].eager,
			Duration:        cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Ablation ABL2: lazy vs eager VPG decryption (bandwidth, Mbps)",
		Columns: []string{"VPGs before action", "Lazy (real ADF)", "Eager"},
	}
	for i, d := range depths {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d),
			fmt.Sprintf("%.1f", points[2*i].Mbps()),
			fmt.Sprintf("%.1f", points[2*i+1].Mbps()),
		})
	}
	return t, nil
}

// AblationTrailingRules (ABL3) validates the paper's §3 observation that
// rules after the action rule do not affect performance.
func AblationTrailingRules(cfg Config) (*Table, error) {
	trailing := []int{0, 32}
	if !cfg.Quick {
		trailing = []int{0, 8, 16, 32}
	}
	points, err := runner.Map(cfg.pool(), len(trailing), func(i int) (core.BandwidthPoint, error) {
		return runAccountedBandwidth(cfg, core.Scenario{
			Device: core.DeviceEFW, Depth: 32, TrailingRules: trailing[i],
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation ABL3: rules after the action rule are free (EFW, action at rule 32)",
		Columns: []string{"Trailing rules", "Available bandwidth (Mbps)"},
	}
	for i, n := range trailing {
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.1f", points[i].Mbps())})
	}
	return t, nil
}
