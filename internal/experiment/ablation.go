package experiment

import (
	"fmt"

	"barbican/internal/core"
)

// AblationDenyResponses (ABL1) quantifies the paper's explanation for
// the deny-vs-allow doubling: allowed flood packets elicit victim
// responses that transit the card outbound. It measures bandwidth under
// a fixed allowed flood with responses on and off.
func AblationDenyResponses(cfg Config) (*Table, error) {
	const rate = 9000
	run := func(suppress bool) (core.BandwidthPoint, error) {
		return core.RunBandwidth(core.Scenario{
			Device: core.DeviceEFW, Depth: 1,
			FloodRatePPS: rate, FloodAllowed: true,
			SuppressFloodResponses: suppress,
			Duration:               cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
	}
	with, err := run(false)
	if err != nil {
		return nil, err
	}
	without, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "Ablation ABL1: victim responses double the card's flood load (EFW, 1 rule, 9,000 pps allowed flood)",
		Columns: []string{"Victim responses", "Available bandwidth (Mbps)"},
		Rows: [][]string{
			{"enabled (real stacks)", fmt.Sprintf("%.1f", with.Mbps())},
			{"suppressed", fmt.Sprintf("%.1f", without.Mbps())},
		},
	}, nil
}

// AblationVPGLazyDecrypt (ABL2) validates the paper's §4.1 observation:
// the ADF does not decrypt until the matching VPG rule, so non-matching
// VPGs above the action pair are nearly free. Eager decryption would
// make them expensive.
func AblationVPGLazyDecrypt(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation ABL2: lazy vs eager VPG decryption (bandwidth, Mbps)",
		Columns: []string{"VPGs before action", "Lazy (real ADF)", "Eager"},
	}
	depths := []int{1, 4}
	if !cfg.Quick {
		depths = []int{1, 2, 3, 4}
	}
	for _, d := range depths {
		lazy, err := core.RunBandwidth(core.Scenario{
			Device: core.DeviceADFVPG, Depth: d,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		eager, err := core.RunBandwidth(core.Scenario{
			Device: core.DeviceADFVPG, Depth: d, EagerVPGDecrypt: true,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d),
			fmt.Sprintf("%.1f", lazy.Mbps()),
			fmt.Sprintf("%.1f", eager.Mbps()),
		})
	}
	return t, nil
}

// AblationTrailingRules (ABL3) validates the paper's §3 observation that
// rules after the action rule do not affect performance.
func AblationTrailingRules(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation ABL3: rules after the action rule are free (EFW, action at rule 32)",
		Columns: []string{"Trailing rules", "Available bandwidth (Mbps)"},
	}
	trailing := []int{0, 32}
	if !cfg.Quick {
		trailing = []int{0, 8, 16, 32}
	}
	for _, n := range trailing {
		p, err := core.RunBandwidth(core.Scenario{
			Device: core.DeviceEFW, Depth: 32, TrailingRules: n,
			Duration: cfg.bandwidthDuration(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.1f", p.Mbps())})
	}
	return t, nil
}
