package runner

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		const n = 100
		res, err := Map(Pool{Workers: workers}, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), n)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEveryTaskExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	_, err := Map(Pool{Workers: 8}, n, func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestMapStealsUnevenWork(t *testing.T) {
	// Front-load all the cost onto worker 0's initial span: without
	// stealing, the other workers would finish instantly and the heavy
	// tasks would run serially. With stealing, at least two goroutines
	// must observe heavy tasks concurrently at some point — detect via
	// a high-water mark of concurrent heavy tasks.
	const n = 64
	var inFlight, highWater atomic.Int32
	var mu sync.Mutex
	block := make(chan struct{})
	first := true
	_, err := Map(Pool{Workers: 4}, n, func(i int) (struct{}, error) {
		if i >= n/4 {
			return struct{}{}, nil // the cheap 3/4
		}
		cur := inFlight.Add(1)
		for {
			hw := highWater.Load()
			if cur <= hw || highWater.CompareAndSwap(hw, cur) {
				break
			}
		}
		mu.Lock()
		if first {
			first = false
			mu.Unlock()
			select {
			case <-block: // park the first heavy task until another arrives
			case <-time.After(5 * time.Second):
			}
		} else {
			mu.Unlock()
			select {
			case block <- struct{}{}:
			default:
			}
		}
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if highWater.Load() < 2 {
		t.Errorf("heavy tasks never ran concurrently; stealing failed (high water %d)", highWater.Load())
	}
}

func TestMapSerialFastPathStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	_, err := Map(Pool{Workers: 1}, 10, func(i int) (int, error) {
		ran++
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Errorf("ran %d tasks serially after error, want 4", ran)
	}
}

func TestMapParallelReturnsLowestIndexedError(t *testing.T) {
	// Every task fails; each worker starts on the front of its own
	// span, so index 0's error always executes and must win.
	_, err := Map(Pool{Workers: 4}, 32, func(i int) (int, error) {
		return 0, fmt.Errorf("task %d failed", i)
	})
	if err == nil || err.Error() != "task 0 failed" {
		t.Fatalf("err = %v, want task 0's error", err)
	}
}

func TestFuncs(t *testing.T) {
	res, err := Funcs(Pool{Workers: 2},
		func() (string, error) { return "a", nil },
		func() (string, error) { return "b", nil },
		func() (string, error) { return "c", nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res); got != "[a b c]" {
		t.Errorf("results = %s", got)
	}
}

func TestMapEmpty(t *testing.T) {
	res, err := Map(Pool{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("res = %v, err = %v", res, err)
	}
}

func TestCollectorOrdersOutput(t *testing.T) {
	var out bytes.Buffer
	c := NewCollector(&out, 3)
	// Task 2 and 1 write and finish before task 0: their output must
	// still appear after task 0's, in task order.
	c.Printf(2, "two-a\n")
	c.Printf(1, "one-a\n")
	c.Done(2)
	c.Printf(0, "zero-a\n")
	c.Printf(1, "one-b\n")
	c.Done(1)
	c.Printf(0, "zero-b\n")
	c.Done(0)
	want := "zero-a\nzero-b\none-a\none-b\ntwo-a\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestCollectorStreamsLiveTask(t *testing.T) {
	var out bytes.Buffer
	c := NewCollector(&out, 2)
	c.Printf(0, "live\n")
	if out.String() != "live\n" {
		t.Errorf("live task did not stream through: %q", out.String())
	}
	c.Done(0)
	c.Printf(1, "next\n") // task 1 is live now
	if out.String() != "live\nnext\n" {
		t.Errorf("newly live task did not stream: %q", out.String())
	}
	c.Done(1)
}

func TestCollectorSerialIdentical(t *testing.T) {
	render := func(workers int) string {
		var out bytes.Buffer
		c := NewCollector(&out, 4)
		_, err := Map(Pool{Workers: workers}, 4, func(i int) (struct{}, error) {
			c.Printf(i, "point %d begin\n", i)
			c.Printf(i, "point %d end\n", i)
			c.Done(i)
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if serial, parallel := render(1), render(4); serial != parallel {
		t.Errorf("serial %q != parallel %q", serial, parallel)
	}
}
