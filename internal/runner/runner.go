// Package runner executes independent experiment points in parallel.
//
// Every experiment in this repository decomposes into points that share
// nothing: each point builds its own sim.Kernel, testbed, and rule-set,
// so points can run on separate OS threads without any synchronization
// beyond the result hand-off. The executor here fans a task list over a
// GOMAXPROCS-sized worker pool with work stealing (experiment points
// have wildly uneven costs — a no-flood bandwidth point finishes an
// order of magnitude before a minimum-flood-rate search — so static
// partitioning would leave workers idle), then reassembles the results
// in declaration order. Serial and parallel execution therefore produce
// byte-identical output: the only thing parallelism changes is which
// wall-clock instant each deterministic simulation runs at.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool sizes the worker set for Map.
type Pool struct {
	// Workers is the maximum number of tasks run concurrently; <= 0
	// means runtime.GOMAXPROCS(0). 1 runs every task serially on the
	// caller's goroutine, reproducing pre-executor behavior exactly.
	Workers int
}

func (p Pool) workers() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// Map runs fn(0) … fn(n-1) on the pool's workers and returns the
// results in index order. Task order in the result is always the
// declaration order 0..n-1 regardless of completion order, so callers
// get deterministic output for deterministic tasks.
//
// On failure Map returns the error of the lowest-indexed failing task —
// deterministically, for deterministic tasks: after a failure at index
// m, tasks above m are skipped but tasks below m still run, so a
// lower-indexed failure always surfaces over a higher-indexed one no
// matter which worker hit its error first.
func Map[T any](p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	res := make([]T, n)
	if n == 0 {
		return res, nil
	}
	w := p.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			res[i] = v
		}
		return res, nil
	}

	// Each worker owns a contiguous index span packed into one atomic
	// word: the owner pops from the front, thieves CAS the tail half
	// away. Claimed indexes never re-enter any span, so a stale steal
	// CAS can never succeed by ABA: a repeated bit pattern would need
	// already-claimed indexes to reappear.
	spans := make([]span, w)
	per, extra := n/w, n%w
	begin := 0
	for i := range spans {
		end := begin + per
		if i < extra {
			end++
		}
		spans[i].v.Store(pack(uint32(begin), uint32(end)))
		begin = end
	}

	var minFail atomic.Int64 // lowest failing index so far; n = none
	minFail.Store(int64(n))
	errs := make([]error, n) // each index is claimed once, so no lock
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := next(spans, self)
				if !ok {
					return
				}
				if int64(i) >= minFail.Load() {
					continue // doomed by an earlier failure; drain without running
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						m := minFail.Load()
						if int64(i) >= m || minFail.CompareAndSwap(m, int64(i)) {
							break
						}
					}
					continue
				}
				res[i] = v
			}
		}(wk)
	}
	wg.Wait()
	if m := minFail.Load(); m < int64(n) {
		return nil, errs[m]
	}
	return res, nil
}

// Funcs runs the given task functions on the pool and returns their
// results in declaration order.
func Funcs[T any](p Pool, fns ...func() (T, error)) ([]T, error) {
	return Map(p, len(fns), func(i int) (T, error) { return fns[i]() })
}

// span is a half-open index range [begin, end) packed into one atomic
// uint64 (begin in the high 32 bits) so pop and steal are single-word
// CAS transitions.
type span struct{ v atomic.Uint64 }

func pack(b, e uint32) uint64       { return uint64(b)<<32 | uint64(e) }
func unpack(v uint64) (b, e uint32) { return uint32(v >> 32), uint32(v) }

// next claims the next task index for worker self: first from the front
// of its own span, then — when that runs dry — by stealing the tail
// half of the fullest victim span. Spans only ever shrink, so when a
// full scan finds every span empty, all tasks are claimed and the
// worker can exit.
func next(spans []span, self int) (int, bool) {
	for {
		v := spans[self].v.Load()
		b, e := unpack(v)
		if b >= e {
			break
		}
		if spans[self].v.CompareAndSwap(v, pack(b+1, e)) {
			return int(b), true
		}
	}
	for {
		victim, best := -1, uint32(0)
		var seen uint64
		for j := range spans {
			if j == self {
				continue
			}
			v := spans[j].v.Load()
			b, e := unpack(v)
			if e-b > best {
				victim, best, seen = j, e-b, v
			}
		}
		if victim < 0 {
			return 0, false
		}
		b, e := unpack(seen)
		take := (e - b + 1) / 2
		mid := e - take
		if !spans[victim].v.CompareAndSwap(seen, pack(b, mid)) {
			continue // the span moved under us; rescan
		}
		// Run the first stolen index now; park the rest as our own
		// span. Our span is empty here and no CAS succeeds on an empty
		// span, so a plain store cannot clobber a concurrent steal.
		spans[self].v.Store(pack(mid+1, e))
		return int(mid), true
	}
}
