package runner

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// Collector serializes per-task progress output from concurrent workers
// so lines never interleave and always appear in task declaration
// order. Output from the lowest unfinished task streams straight
// through to the destination; later tasks buffer until every earlier
// task calls Done, at which point their backlog flushes in order.
//
// With one worker (serial execution) every task is the live task when
// it runs, so the collector degenerates to direct writes and output is
// byte-identical to the parallel case.
type Collector struct {
	mu   sync.Mutex
	w    io.Writer
	n    int
	next int
	bufs []bytes.Buffer
	done []bool
}

// NewCollector builds a collector for n tasks writing to w.
func NewCollector(w io.Writer, n int) *Collector {
	return &Collector{w: w, n: n, bufs: make([]bytes.Buffer, n), done: make([]bool, n)}
}

// Printf emits formatted output attributed to task i.
func (c *Collector) Printf(i int, format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i == c.next {
		fmt.Fprintf(c.w, format, args...)
		return
	}
	fmt.Fprintf(&c.bufs[i], format, args...)
}

// Done marks task i complete. When the live task finishes, the
// collector advances, flushing each newly live task's buffered backlog
// (and skipping past tasks that already finished while buffered).
func (c *Collector) Done(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[i] = true
	for c.next < c.n && c.done[c.next] {
		c.bufs[c.next].WriteTo(c.w)
		c.next++
		if c.next < c.n {
			c.bufs[c.next].WriteTo(c.w)
		}
	}
}
